//! Property-based tests for the flow layer: sampling statistics, record
//! conversions, accumulator algebra, and metering conservation laws.

use mt_flow::{binomial, FlowKey, FlowMeter, FlowRecord, MeteredPacket, TrafficStats};
use mt_types::{Ipv4, SimDuration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(1u8), Just(6), Just(17), Just(47)],
        0u8..=0x3f,
        1u64..=5_000,
        20u64..=1_500,
        0u64..1_000_000,
    )
        .prop_map(
            |(src, dst, sp, dp, proto, flags, packets, size, start)| FlowRecord {
                start: SimTime(start),
                src: Ipv4(src),
                dst: Ipv4(dst),
                src_port: sp,
                dst_port: dp,
                protocol: proto,
                tcp_flags: flags,
                packets,
                octets: packets * size,
            },
        )
}

proptest! {
    #[test]
    fn binomial_stays_in_bounds(n in 0u64..=1_000_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = binomial(&mut rng, n, p);
        prop_assert!(k <= n);
        if p == 0.0 {
            prop_assert_eq!(k, 0);
        }
        if p == 1.0 {
            prop_assert_eq!(k, n);
        }
    }

    #[test]
    fn ipfix_record_roundtrip(r in arb_record()) {
        // Sub-day start times fit the u32 wire field.
        let r = FlowRecord { start: SimTime(r.start.0 % 86_400), ..r };
        prop_assert_eq!(FlowRecord::from_ipfix(&r.to_ipfix()), r);
    }

    #[test]
    fn stats_totals_match_inputs(records in proptest::collection::vec(arb_record(), 0..80)) {
        let stats = TrafficStats::from_records(&records);
        prop_assert_eq!(stats.total_flows, records.len() as u64);
        prop_assert_eq!(stats.total_packets, records.iter().map(|r| r.packets).sum::<u64>());
        prop_assert_eq!(stats.total_octets, records.iter().map(|r| r.octets).sum::<u64>());
        // Per-destination TCP totals re-add to the global TCP volume.
        let tcp_from_blocks: u64 = stats.iter_dst().map(|(_, d)| d.tcp_packets).sum();
        let tcp_direct: u64 = records.iter().filter(|r| r.protocol == 6).map(|r| r.packets).sum();
        prop_assert_eq!(tcp_from_blocks, tcp_direct);
    }

    #[test]
    fn stats_merge_is_order_insensitive(
        a in proptest::collection::vec(arb_record(), 0..40),
        b in proptest::collection::vec(arb_record(), 0..40),
    ) {
        let mut ab = TrafficStats::from_records(&a);
        ab.merge(&TrafficStats::from_records(&b));
        let mut ba = TrafficStats::from_records(&b);
        ba.merge(&TrafficStats::from_records(&a));
        prop_assert_eq!(ab.total_packets, ba.total_packets);
        prop_assert_eq!(ab.dst_block_count(), ba.dst_block_count());
        prop_assert_eq!(ab.src_block_count(), ba.src_block_count());
        for (block, d) in ab.iter_dst() {
            let other = ba.dst(block).expect("same blocks");
            prop_assert_eq!(d.tcp_packets, other.tcp_packets);
            prop_assert_eq!(d.median_tcp_size(), other.median_tcp_size());
            prop_assert_eq!(d.received, other.received);
        }
    }

    #[test]
    fn meter_conserves_packets_and_octets(
        // (time delta, flow id, length) streams.
        steps in proptest::collection::vec((0u64..40, 0u8..6, 20u16..1500), 1..200),
    ) {
        let mut meter = FlowMeter::new(SimDuration::secs(60), SimDuration::secs(15));
        let mut t = 0u64;
        let mut records = Vec::new();
        let (mut packets_in, mut octets_in) = (0u64, 0u64);
        for (dt, flow_id, len) in steps {
            t += dt;
            let packet = MeteredPacket {
                time: SimTime(t),
                key: FlowKey {
                    src: Ipv4::new(9, 0, 0, flow_id),
                    dst: Ipv4::new(20, 0, 0, 1),
                    src_port: 40_000,
                    dst_port: 23,
                    protocol: 6,
                },
                tcp_flags: 2,
                length: len,
            };
            packets_in += 1;
            octets_in += u64::from(len);
            records.extend(meter.observe(&packet));
        }
        records.extend(meter.drain());
        prop_assert_eq!(records.iter().map(|r| r.packets).sum::<u64>(), packets_in);
        prop_assert_eq!(records.iter().map(|r| r.octets).sum::<u64>(), octets_in);
        // Every record respects the active timeout (start-to-start of a
        // split is at least the timeout, so no record is empty).
        for r in &records {
            prop_assert!(r.packets > 0);
        }
    }

    #[test]
    fn thinning_never_grows(records in proptest::collection::vec(arb_record(), 0..60), factor in 1u32..300) {
        let thinned = mt_flow::sampling::thin_records(&records, factor, &mut StdRng::seed_from_u64(5));
        prop_assert!(thinned.len() <= records.len());
        let before: u64 = records.iter().map(|r| r.packets).sum();
        let after: u64 = thinned.iter().map(|r| r.packets).sum();
        prop_assert!(after <= before);
        for r in &thinned {
            prop_assert!(r.packets >= 1);
        }
    }
}
