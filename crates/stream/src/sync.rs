//! Lock helpers that centralise this crate's poisoning policy.
//!
//! A `std::sync` mutex is poisoned only when a thread panicked while
//! holding it. Every lock in this crate guards plain counters or
//! accumulator maps with no partially-applied invariants, but a panic in
//! an ingest worker still means the run's numbers can no longer be
//! trusted — so the policy is to re-raise the panic on whoever touches
//! the lock next rather than limp on with `into_inner`. These helpers
//! state (and pragma) that decision once instead of at each of the
//! crate's lock sites.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Acquires `mutex`, re-raising any panic that poisoned it.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // check: allow(no_panic, "poisoning means a holder panicked; re-raising on the next toucher is the crate-wide policy stated at module level")
    mutex.lock().expect("stream lock poisoned") // lock: generic
}

/// Blocks on `condvar`, re-raising any panic that poisoned the lock.
pub(crate) fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    // check: allow(no_panic, "poisoning means a holder panicked; re-raising on the next toucher is the crate-wide policy stated at module level")
    condvar.wait(guard).expect("stream lock poisoned")
}

/// Blocks on `condvar` until `cond` turns false, re-raising any panic
/// that poisoned the lock.
pub(crate) fn wait_while<'a, T, F>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    cond: F,
) -> MutexGuard<'a, T>
where
    F: FnMut(&mut T) -> bool,
{
    condvar
        .wait_while(guard, cond)
        // check: allow(no_panic, "poisoning means a holder panicked; re-raising on the next toucher is the crate-wide policy stated at module level")
        .expect("stream lock poisoned")
}
