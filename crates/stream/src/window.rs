//! Event-time windowing with a watermark and allowed lateness.
//!
//! Windows are keyed by simulated [`Day`] — the observation unit of the
//! paper's pipeline. The tracker maintains a *watermark* that trails the
//! maximum event time seen by the configured `allowed_lateness`; a day's
//! window is closable once the watermark reaches the day's end, i.e.
//! once the stream has advanced `allowed_lateness` past it. Records are
//! gated at arrival:
//!
//! - event time in a still-open window → **accepted**; additionally
//!   counted *late* if it trails the current watermark (out of order by
//!   more than the lateness bound would have dropped it — these are the
//!   stragglers the lateness budget exists for);
//! - event time in a closed window → **dropped** (counted; the window's
//!   result was already emitted and is never reopened).
//!
//! Gating is a pure function of `(event time, watermark)`, which is what
//! keeps the streaming path's window contents — and therefore its
//! pipeline results — exactly equal to a batch partition of the same
//! records by day.

use mt_types::{Day, SimDuration, SimTime};
use std::collections::BTreeSet;

/// The gate's decision for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// The record belongs to the (open) window of `day`.
    Accept {
        /// The window's day.
        day: Day,
        /// Whether the record trails the current watermark.
        late: bool,
    },
    /// The record's window already closed; the record is dropped.
    TooLate {
        /// The closed window's day.
        day: Day,
    },
}

/// Watermark-based day-window bookkeeping.
#[derive(Debug)]
pub struct WindowTracker {
    allowed_lateness: SimDuration,
    max_event: Option<SimTime>,
    /// Days with accepted data whose windows are still open.
    open: BTreeSet<Day>,
    /// Records accepted with event time at or ahead of the watermark.
    pub on_time: u64,
    /// Records accepted behind the watermark (inside allowed lateness).
    pub late: u64,
    /// Records dropped because their window had closed.
    pub dropped: u64,
}

impl WindowTracker {
    /// Creates a tracker with the given allowed lateness.
    pub fn new(allowed_lateness: SimDuration) -> Self {
        WindowTracker {
            allowed_lateness,
            max_event: None,
            open: BTreeSet::new(),
            on_time: 0,
            late: 0,
            dropped: 0,
        }
    }

    /// The configured allowed lateness.
    pub fn allowed_lateness(&self) -> SimDuration {
        self.allowed_lateness
    }

    /// The current watermark: the maximum event time seen minus the
    /// allowed lateness. `None` until the first record arrives.
    pub fn watermark(&self) -> Option<SimTime> {
        self.max_event
            .map(|t| SimTime(t.0.saturating_sub(self.allowed_lateness.as_secs())))
    }

    /// The single close predicate, shared by the gate ([`is_closed`],
    /// which drops records) and the scheduler feed ([`take_closable`],
    /// which emits windows). Keeping both on one function makes the
    /// boundary case impossible to skew: `day.end()` is *exclusive*
    /// (the first instant of the next day), and a window closes exactly
    /// when the watermark reaches it — `wm == day.end()` closes, `wm ==
    /// day.end() - 1` does not. A record timestamped exactly at the
    /// watermark is therefore never droppable (its day cannot satisfy
    /// `day.end() <= wm` while `t == wm` lies inside the day), matching
    /// the lateness gate's strict `t < wm` below.
    ///
    /// [`is_closed`]: WindowTracker::is_closed
    /// [`take_closable`]: WindowTracker::take_closable
    fn closed_under(day: Day, wm: SimTime) -> bool {
        day.end() <= wm
    }

    /// Whether `day`'s window has closed under the current watermark.
    pub fn is_closed(&self, day: Day) -> bool {
        self.watermark()
            .is_some_and(|wm| Self::closed_under(day, wm))
    }

    /// Gates one record by event time, advancing the watermark.
    pub fn observe(&mut self, t: SimTime) -> Gate {
        let day = t.day();
        if self.is_closed(day) {
            self.dropped += 1;
            return Gate::TooLate { day };
        }
        let late = self.watermark().is_some_and(|wm| t < wm);
        if late {
            self.late += 1;
        } else {
            self.on_time += 1;
        }
        if self.max_event.is_none_or(|m| t > m) {
            self.max_event = Some(t);
        }
        self.open.insert(day);
        Gate::Accept { day, late }
    }

    /// Removes and returns the open days whose windows became closable
    /// under the current watermark, in ascending day order. The caller
    /// must emit them in that order so multi-day combination stays
    /// incremental.
    pub fn take_closable(&mut self) -> Vec<Day> {
        let Some(wm) = self.watermark() else {
            return Vec::new();
        };
        let closable: Vec<Day> = self
            .open
            .iter()
            .copied()
            .take_while(|d| Self::closed_under(*d, wm))
            .collect();
        for d in &closable {
            self.open.remove(d);
        }
        closable
    }

    /// Removes and returns every remaining open day in ascending order
    /// (end of stream: all windows flush regardless of the watermark).
    pub fn drain_open(&mut self) -> Vec<Day> {
        std::mem::take(&mut self.open).into_iter().collect()
    }

    /// Days currently open, ascending.
    pub fn open_days(&self) -> impl Iterator<Item = Day> + '_ {
        self.open.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(day: u32, secs: u64) -> SimTime {
        Day(day).start() + SimDuration::secs(secs)
    }

    #[test]
    fn in_order_records_are_on_time() {
        let mut w = WindowTracker::new(SimDuration::hours(2));
        assert_eq!(
            w.observe(t(0, 10)),
            Gate::Accept {
                day: Day(0),
                late: false
            }
        );
        assert_eq!(
            w.observe(t(0, 500)),
            Gate::Accept {
                day: Day(0),
                late: false
            }
        );
        assert_eq!(w.on_time, 2);
        assert_eq!(w.late, 0);
        assert!(w.take_closable().is_empty(), "watermark inside day 0");
    }

    #[test]
    fn window_closes_once_lateness_elapses() {
        let mut w = WindowTracker::new(SimDuration::hours(2));
        w.observe(t(0, 100));
        w.observe(t(1, 0));
        assert!(
            w.take_closable().is_empty(),
            "day 0 stays open through the lateness horizon"
        );
        w.observe(t(1, 2 * 3600)); // watermark reaches day 0's end exactly
        assert_eq!(w.take_closable(), [Day(0)]);
        assert!(!w.is_closed(Day(1)));
    }

    #[test]
    fn straggler_within_lateness_is_late_but_accepted() {
        let mut w = WindowTracker::new(SimDuration::hours(2));
        w.observe(t(1, 3600)); // watermark = day 1 minus 1 h → inside day 0
        match w.observe(t(0, 80_000)) {
            Gate::Accept { day, late } => {
                assert_eq!(day, Day(0));
                assert!(late, "behind the watermark");
            }
            g => panic!("unexpected gate {g:?}"),
        }
        assert_eq!(w.late, 1);
    }

    #[test]
    fn straggler_past_lateness_is_dropped() {
        let mut w = WindowTracker::new(SimDuration::hours(2));
        w.observe(t(0, 100));
        w.observe(t(1, 3 * 3600)); // watermark = day 1 + 1 h → day 0 closed
        assert_eq!(w.take_closable(), [Day(0)]);
        assert_eq!(w.observe(t(0, 200)), Gate::TooLate { day: Day(0) });
        assert_eq!(w.dropped, 1);
        // A day that never held data is also closed once passed.
        let mut w2 = WindowTracker::new(SimDuration::secs(0));
        w2.observe(t(5, 0));
        assert_eq!(w2.observe(t(2, 0)), Gate::TooLate { day: Day(2) });
    }

    #[test]
    fn multiple_days_close_in_order() {
        let mut w = WindowTracker::new(SimDuration::secs(0));
        w.observe(t(0, 5));
        w.observe(t(1, 5));
        w.observe(t(2, 5));
        w.observe(t(4, 0)); // jump: days 0–2 all closable at once
        assert_eq!(w.take_closable(), [Day(0), Day(1), Day(2)]);
        assert_eq!(w.drain_open(), [Day(4)]);
        assert!(w.take_closable().is_empty());
    }

    /// Boundary sweep at ±1 tick around the two equalities the gate and
    /// the scheduler share: a record exactly *at* the watermark, and a
    /// watermark exactly *at* a day's (exclusive) end.
    #[test]
    fn lateness_boundary_is_exclusive_at_both_equalities() {
        // Watermark lands exactly on t(0, 1000): lateness 1 h, max
        // event at day 0 + 1000 s + 1 h.
        let mut w = WindowTracker::new(SimDuration::hours(1));
        w.observe(t(0, 1000 + 3600));
        assert_eq!(w.watermark(), Some(t(0, 1000)));
        // Exactly at the watermark → on-time (late is strict `t < wm`).
        assert_eq!(
            w.observe(t(0, 1000)),
            Gate::Accept {
                day: Day(0),
                late: false
            },
            "t == watermark is on-time"
        );
        // One tick behind → late, still accepted.
        assert_eq!(
            w.observe(t(0, 999)),
            Gate::Accept {
                day: Day(0),
                late: true
            },
            "t == watermark - 1 is late"
        );
        assert_eq!((w.on_time, w.late, w.dropped), (2, 1, 0));

        // Close condition: day 0 ends (exclusively) at day 1's start.
        // One tick short of the end → open; exactly at the end → closed.
        let mut w = WindowTracker::new(SimDuration::secs(0));
        w.observe(t(0, 5));
        w.observe(t(0, 86_399)); // wm = day 0's last second = end - 1
        assert!(
            !w.is_closed(Day(0)) && w.take_closable().is_empty(),
            "wm == day end - 1: still open"
        );
        w.observe(Day(1).start());
        assert!(w.is_closed(Day(0)), "wm == day end: closed");
        assert_eq!(w.take_closable(), [Day(0)]);
        // And the gate agrees with the scheduler: the same watermark
        // that emitted the window also drops a record for it.
        assert_eq!(w.observe(t(0, 6)), Gate::TooLate { day: Day(0) });
    }

    #[test]
    fn zero_lateness_watermark_tracks_max_event() {
        let mut w = WindowTracker::new(SimDuration::secs(0));
        assert_eq!(w.watermark(), None);
        w.observe(t(3, 7));
        assert_eq!(w.watermark(), Some(t(3, 7)));
        w.observe(t(3, 2)); // out of order, same window: still accepted
        assert_eq!(w.watermark(), Some(t(3, 7)), "watermark never regresses");
        assert_eq!(w.late, 1);
    }
}
