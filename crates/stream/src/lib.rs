//! Continuous streaming collection for the meta-telescope pipeline.
//!
//! The batch reproduction generates a day of traffic, aggregates it, and
//! runs the Section 4.2 pipeline once. The operational system the paper
//! describes works nothing like that: IPFIX messages from 14 IXPs arrive
//! continuously, and the pipeline re-runs per observation window. This
//! crate provides that continuous-operation layer on top of the parallel
//! substrate ([`mt_flow::ShardedTrafficStats`],
//! [`mt_core::PipelineEngine::run_sharded`]):
//!
//! - [`collector`] — per-exporter IPFIX *sessions*: each session frames
//!   RFC 7011 §10.4 self-delimiting messages out of an arbitrary byte
//!   stream (chunks may split messages anywhere), decodes them with its
//!   own template [`mt_wire::ipfix::Collector`], resynchronizes after
//!   garbage, and keeps per-exporter counters (bytes, messages, flows,
//!   decode errors).
//! - [`window`] — event-time windowing keyed by simulated day: a
//!   watermark trails the maximum event time by a configurable
//!   *allowed lateness*; a day's window closes once the watermark passes
//!   the day's end. Out-of-order records inside the lateness bound are
//!   accepted (and counted late); records for closed windows are dropped
//!   (and counted).
//! - [`queue`] — a bounded MPSC queue between the collector and the
//!   ingest workers, so a slow pipeline degrades gracefully (blocking or
//!   counted drops, high-water-mark stats) instead of buffering without
//!   bound.
//! - [`scheduler`] — on window close, runs the sharded pipeline for the
//!   window and incrementally maintains the multi-day combination
//!   (cumulative merged stats + union RIB, the `mt_core::combine`
//!   semantics) so the K-of-N combined result is refreshed after every
//!   window.
//! - [`service`] — the assembled [`service::StreamService`]: byte chunks
//!   in, per-window and combined [`mt_core::pipeline::PipelineResult`]s
//!   out, with ingest parallelised over worker threads. Every run
//!   carries an [`mt_obs::MetricsRegistry`]; the collector/queue/gate
//!   counters republish into it, and [`service::StreamService::health`]
//!   returns one [`service::HealthSnapshot`] whose accounting
//!   identities (decoded = on-time + late + dropped, accepted =
//!   ingested + in-flight + shed + rejected) tie the whole stack
//!   together.
//! - [`multi`] — the multi-producer variant
//!   [`multi::MultiStreamService`]: N event-loop *lanes*
//!   ([`multi::LaneProducer`]) feed the same worker pool through
//!   per-lane queue quotas and pools, rebuilding the single-producer
//!   ordering argument around a shared gate so the sharded daemon can
//!   ingest on every core with the same health identities and the same
//!   batch equivalence.
//!
//! # Equivalence with the batch path
//!
//! The keystone property is that streaming changes *when* work happens,
//! never *what* is computed: for the same underlying records, the
//! per-window and combined results are bit-identical to batch
//! [`mt_core::PipelineEngine::run_sharded`] over the same records. The
//! chain of reasons: window membership is a pure function of a record's
//! event time (its day); per-/24 accumulation is order-independent
//! (counters add, host sets union), so any partition of a window's
//! records across ingest workers merges to the exact batch accumulator;
//! and the sharded pipeline is itself bit-identical to the serial one.
//! The integration test `streaming_equivalence` asserts this end to end,
//! including under shuffled arrival within the allowed lateness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod collector;
pub mod multi;
pub mod queue;
pub mod scheduler;
pub mod service;
mod sync;
pub mod window;

pub use batch::{BatchPool, RecordBatch};
pub use collector::{ExporterSession, StreamCollector};
pub use multi::{LaneProducer, MultiStreamService};
pub use queue::{BoundedQueue, OverflowPolicy, PushOutcome, QueueStats};
pub use scheduler::{
    ClosedWindow, CombinedReport, SchedulerConfig, WindowReport, WindowScheduler, WindowSink,
};
pub use service::{ExporterCounters, HealthSnapshot, StreamConfig, StreamOutput, StreamService};
pub use window::{Gate, WindowTracker};
