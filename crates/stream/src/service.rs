//! The assembled streaming service: IPFIX byte chunks in, per-window
//! and combined pipeline results out.
//!
//! # Threading model
//!
//! One *producer* (the caller of [`StreamService::push_chunk`]) and N
//! *ingest workers*. The producer owns everything whose order matters
//! for determinism: message framing and decoding, the window gate
//! (late/dropped decisions against the watermark), and window-close
//! scheduling. Workers only do the order-*independent* part — folding
//! records into per-day [`ShardedTrafficStats`] — so the nondeterminism
//! of which worker picks up which batch cannot affect results: each
//! worker accumulates its share into its own per-day stats, and at
//! window close the per-worker parts are merged in worker-index order
//! (merging is commutative content-wise; the fixed order makes the walk
//! itself deterministic too).
//!
//! Window close uses an epoch barrier: the producer counts records
//! pushed, workers count records processed, and close waits until the
//! two agree — at that point every accepted record of the closing day
//! is in some worker's accumulator, and the merged window stats equal a
//! batch ingest of exactly the gated record set.

use crate::collector::StreamCollector;
use crate::queue::{BoundedQueue, OverflowPolicy, QueueStats};
use crate::scheduler::{CombinedReport, SchedulerConfig, WindowReport, WindowScheduler};
use crate::window::{Gate, WindowTracker};
use mt_core::pipeline::PipelineConfig;
use mt_flow::{FlowRecord, ShardedTrafficStats};
use mt_types::{Asn, Day, PrefixTrie, SimDuration};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Configuration of the whole streaming stack.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Shards per window accumulator (must match across the run).
    pub num_shards: usize,
    /// Per-host size threshold (must match the pipeline's).
    pub size_threshold: u16,
    /// Ingest worker threads.
    pub ingest_threads: usize,
    /// Worker threads for each window's `run_sharded`.
    pub pipeline_threads: usize,
    /// Capacity of the collector→ingest queue, in batches.
    pub queue_capacity: usize,
    /// What a full queue does to new batches.
    pub overflow: OverflowPolicy,
    /// How far event time may lag the stream maximum before a record's
    /// window closes without it.
    pub allowed_lateness: SimDuration,
    /// The exporters' packet sampling rate.
    pub sampling_rate: u32,
    /// Pipeline thresholds.
    pub pipeline: PipelineConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            num_shards: mt_flow::sharded::DEFAULT_SHARDS,
            size_threshold: mt_flow::stats::DEFAULT_SIZE_THRESHOLD,
            ingest_threads: 2,
            pipeline_threads: 2,
            queue_capacity: 64,
            overflow: OverflowPolicy::Block,
            allowed_lateness: SimDuration::hours(2),
            sampling_rate: 1,
            pipeline: PipelineConfig::default(),
        }
    }
}

/// Per-exporter lifetime counters, as reported by [`StreamOutput`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExporterCounters {
    /// Exporter name.
    pub name: String,
    /// Bytes received.
    pub bytes: u64,
    /// IPFIX messages decoded.
    pub messages: u64,
    /// Flow records decoded.
    pub flows: u64,
    /// Decode trouble: framing errors plus skipped sets/records.
    pub decode_errors: u64,
    /// Records accepted behind the watermark.
    pub late: u64,
    /// Records dropped because their window had closed.
    pub dropped: u64,
}

/// Everything a finished streaming run produced.
#[derive(Debug)]
pub struct StreamOutput {
    /// Per-window reports, in close (day) order.
    pub windows: Vec<WindowReport>,
    /// The combined report after each window close (last = final).
    pub combined: Vec<CombinedReport>,
    /// Per-exporter counters, ordered by exporter name.
    pub exporters: Vec<ExporterCounters>,
    /// Collector→ingest queue statistics.
    pub queue: QueueStats,
    /// Records accepted at or ahead of the watermark.
    pub on_time: u64,
    /// Records accepted behind the watermark (within allowed lateness).
    pub late: u64,
    /// Records dropped at the window gate (window already closed).
    pub dropped_late: u64,
    /// Records shed by queue backpressure (`DropNewest` only).
    pub dropped_backpressure: u64,
}

/// One unit of ingest work: a day's worth of records from one chunk.
struct Batch {
    day: Day,
    records: Vec<FlowRecord>,
}

#[derive(Default)]
struct Progress {
    pushed: u64,
    processed: u64,
}

/// State shared with the ingest workers.
struct Shared {
    queue: BoundedQueue<Batch>,
    /// Per-worker per-day accumulators, indexed by worker.
    workers: Vec<Mutex<HashMap<Day, ShardedTrafficStats>>>,
    progress: Mutex<Progress>,
    drained: Condvar,
    num_shards: usize,
    size_threshold: u16,
}

/// The streaming stack: collector sessions, window gate, bounded queue,
/// ingest workers, and the window scheduler.
pub struct StreamService<F> {
    cfg: StreamConfig,
    collector: StreamCollector,
    tracker: WindowTracker,
    scheduler: WindowScheduler<F>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    windows: Vec<WindowReport>,
    combined: Vec<CombinedReport>,
    /// Records enqueued per open window.
    window_records: HashMap<Day, u64>,
    /// Per-exporter window-gate counters: (late, dropped).
    gate_counts: BTreeMap<String, (u64, u64)>,
    dropped_backpressure: u64,
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> StreamService<F> {
    /// Starts the service: spawns the ingest workers and returns the
    /// producer-side handle. `rib_of` supplies each day's RIB snapshot
    /// at window close.
    pub fn start(cfg: StreamConfig, rib_of: F) -> Self {
        assert!(cfg.ingest_threads >= 1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity, cfg.overflow),
            workers: (0..cfg.ingest_threads)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            progress: Mutex::new(Progress::default()),
            drained: Condvar::new(),
            num_shards: cfg.num_shards,
            size_threshold: cfg.size_threshold,
        });
        let handles = (0..cfg.ingest_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || ingest_worker(&shared, i))
            })
            .collect();
        let scheduler = WindowScheduler::new(
            rib_of,
            SchedulerConfig {
                sampling_rate: cfg.sampling_rate,
                pipeline: cfg.pipeline.clone(),
                threads: cfg.pipeline_threads,
            },
        );
        StreamService {
            tracker: WindowTracker::new(cfg.allowed_lateness),
            cfg,
            collector: StreamCollector::new(),
            scheduler,
            shared,
            handles,
            windows: Vec::new(),
            combined: Vec::new(),
            window_records: HashMap::new(),
            gate_counts: BTreeMap::new(),
            dropped_backpressure: 0,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The per-exporter collector sessions (live counters).
    pub fn collector(&self) -> &StreamCollector {
        &self.collector
    }

    /// The window tracker (watermark, gate counters).
    pub fn tracker(&self) -> &WindowTracker {
        &self.tracker
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> usize {
        self.windows.len()
    }

    /// Feeds one chunk of `exporter`'s IPFIX byte stream. Complete
    /// messages are decoded, their records gated against the watermark,
    /// accepted records handed to the ingest workers, and any windows
    /// the advancing watermark closed are run to completion.
    pub fn push_chunk(&mut self, exporter: &str, chunk: &[u8]) {
        let flows = self.collector.feed(exporter, chunk);
        if flows.is_empty() {
            self.close_ready_windows();
            return;
        }
        let gate = self.gate_counts.entry(exporter.to_owned()).or_default();
        // Group the chunk's accepted records per day so one queue item
        // is one (day, records) batch.
        let mut by_day: BTreeMap<Day, Vec<FlowRecord>> = BTreeMap::new();
        for f in &flows {
            let r = FlowRecord::from_ipfix(f);
            match self.tracker.observe(r.start) {
                Gate::Accept { day, late } => {
                    if late {
                        gate.0 += 1;
                    }
                    by_day.entry(day).or_default().push(r);
                }
                Gate::TooLate { .. } => gate.1 += 1,
            }
        }
        for (day, records) in by_day {
            let n = records.len() as u64;
            if self.shared.queue.push(Batch { day, records }) {
                self.shared
                    .progress
                    .lock()
                    .expect("progress lock poisoned")
                    .pushed += n;
                *self.window_records.entry(day).or_default() += n;
            } else {
                self.dropped_backpressure += n;
            }
        }
        self.close_ready_windows();
    }

    /// Closes every window the current watermark allows.
    fn close_ready_windows(&mut self) {
        let closable = self.tracker.take_closable();
        if closable.is_empty() {
            return;
        }
        self.flush();
        for day in closable {
            self.close_window(day);
        }
    }

    /// Epoch barrier: waits until the workers have ingested every
    /// record pushed so far.
    fn flush(&self) {
        let g = self.shared.progress.lock().expect("progress lock poisoned");
        let _g = self
            .shared
            .drained
            .wait_while(g, |p| p.processed < p.pushed)
            .expect("progress lock poisoned");
    }

    /// Merges the per-worker accumulators of `day` (worker-index order)
    /// and hands the window to the scheduler. Callers must flush first.
    fn close_window(&mut self, day: Day) {
        let mut merged: Option<ShardedTrafficStats> = None;
        for w in &self.shared.workers {
            let part = w.lock().expect("worker state poisoned").remove(&day);
            if let Some(part) = part {
                match &mut merged {
                    None => merged = Some(part),
                    Some(m) => m.merge(&part),
                }
            }
        }
        let stats = merged.unwrap_or_else(|| {
            ShardedTrafficStats::with_size_threshold(
                self.shared.num_shards,
                self.shared.size_threshold,
            )
        });
        let records = self.window_records.remove(&day).unwrap_or(0);
        let (window, combined) = self.scheduler.close(day, records, stats);
        self.windows.push(window);
        self.combined.push(combined);
    }

    /// Ends the stream: flushes in-flight records, closes every
    /// remaining open window in day order, stops the workers, and
    /// returns the run's full output.
    pub fn finish(mut self) -> StreamOutput {
        self.flush();
        for day in self.tracker.drain_open() {
            self.close_window(day);
        }
        self.shared.queue.close();
        for h in self.handles.drain(..) {
            h.join().expect("ingest worker panicked");
        }
        let exporters = self
            .collector
            .sessions()
            .map(|(name, s)| {
                let (late, dropped) = self.gate_counts.get(name).copied().unwrap_or_default();
                ExporterCounters {
                    name: name.to_owned(),
                    bytes: s.bytes,
                    messages: s.messages,
                    flows: s.flows,
                    decode_errors: s.decode_errors(),
                    late,
                    dropped,
                }
            })
            .collect();
        StreamOutput {
            windows: self.windows,
            combined: self.combined,
            exporters,
            queue: self.shared.queue.stats(),
            on_time: self.tracker.on_time,
            late: self.tracker.late,
            dropped_late: self.tracker.dropped,
            dropped_backpressure: self.dropped_backpressure,
        }
    }
}

/// Ingest worker loop: pop batches, fold records into this worker's
/// per-day accumulator, and report progress for the flush barrier.
fn ingest_worker(shared: &Shared, index: usize) {
    while let Some(batch) = shared.queue.pop() {
        let n = batch.records.len() as u64;
        {
            let mut days = shared.workers[index].lock().expect("worker state poisoned");
            let stats = days.entry(batch.day).or_insert_with(|| {
                ShardedTrafficStats::with_size_threshold(shared.num_shards, shared.size_threshold)
            });
            for r in &batch.records {
                stats.ingest(r);
            }
        }
        let mut p = shared.progress.lock().expect("progress lock poisoned");
        p.processed += n;
        drop(p);
        shared.drained.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_core::PipelineEngine;
    use mt_types::{Ipv4, Prefix};
    use mt_wire::ipfix;

    fn rib() -> PrefixTrie<Asn> {
        [("20.0.0.0/8".parse::<Prefix>().unwrap(), Asn(65_000))]
            .into_iter()
            .collect()
    }

    fn record(day: Day, offset: u64, dst: u32, packets: u64) -> FlowRecord {
        FlowRecord {
            start: day.start() + SimDuration::secs(offset),
            src: Ipv4::new(9, 9, 9, 9),
            dst: Ipv4(dst),
            src_port: 40_000,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * 40,
        }
    }

    fn encode(records: &[FlowRecord], seq: &mut u32) -> Vec<u8> {
        let flows: Vec<ipfix::IpfixFlow> = records.iter().map(FlowRecord::to_ipfix).collect();
        ipfix::encode_messages(&flows, 0, 1, seq, 50)
            .into_iter()
            .flatten()
            .collect()
    }

    fn day_records(day: Day) -> Vec<FlowRecord> {
        (0..40u32)
            .map(|i| {
                record(
                    day,
                    u64::from(i) * 600,
                    0x1400_0100 + (i % 13) * 256 + day.0 * 7,
                    1 + u64::from(i % 4),
                )
            })
            .collect()
    }

    #[test]
    fn streamed_windows_match_batch_per_day() {
        for threads in [1, 3] {
            let cfg = StreamConfig {
                ingest_threads: threads,
                allowed_lateness: SimDuration::hours(1),
                ..StreamConfig::default()
            };
            let mut svc = StreamService::start(cfg.clone(), |_| rib());
            let mut seq = 0;
            let mut all = Vec::new();
            for d in 0..3 {
                let recs = day_records(Day(d));
                let bytes = encode(&recs, &mut seq);
                // Feed in awkward chunk sizes to exercise framing.
                for chunk in bytes.chunks(97) {
                    svc.push_chunk("CE1", chunk);
                }
                all.push(recs);
            }
            assert_eq!(
                svc.windows_closed(),
                2,
                "days 0 and 1 closed mid-stream at {threads} threads"
            );
            let out = svc.finish();
            assert_eq!(out.windows.len(), 3);
            assert_eq!(out.dropped_late, 0);
            assert_eq!(out.dropped_backpressure, 0);

            let engine = PipelineEngine::standard();
            for (w, recs) in out.windows.iter().zip(&all) {
                assert_eq!(w.records, recs.len() as u64);
                let batch_stats = ShardedTrafficStats::from_records(cfg.num_shards, recs);
                let batch = engine.run_sharded(&batch_stats, &rib(), 1, 1, &cfg.pipeline, 2);
                assert_eq!(w.result.dark, batch.dark, "day {}", w.day.0);
                assert_eq!(w.result.unclean, batch.unclean);
                assert_eq!(w.result.gray, batch.gray);
                assert_eq!(w.result.funnel, batch.funnel);
            }
            // Combined final result equals batch over everything.
            let flat: Vec<FlowRecord> = all.iter().flatten().cloned().collect();
            let batch_stats = ShardedTrafficStats::from_records(cfg.num_shards, &flat);
            let batch = engine.run_sharded(&batch_stats, &rib(), 1, 3, &cfg.pipeline, 2);
            let fin = out.combined.last().unwrap();
            assert_eq!(fin.days, 3);
            assert_eq!(fin.result.dark, batch.dark);
            assert_eq!(fin.result.funnel, batch.funnel);
        }
    }

    #[test]
    fn too_late_records_are_dropped_and_counted() {
        let cfg = StreamConfig {
            allowed_lateness: SimDuration::hours(1),
            ..StreamConfig::default()
        };
        let mut svc = StreamService::start(cfg, |_| rib());
        let mut seq = 0;
        svc.push_chunk("X", &encode(&day_records(Day(0)), &mut seq));
        svc.push_chunk("X", &encode(&day_records(Day(2)), &mut seq));
        assert_eq!(svc.windows_closed(), 1, "day 0 closed");
        // A straggler for day 0 after its window closed.
        svc.push_chunk("X", &encode(&[record(Day(0), 3, 0x1400_0100, 1)], &mut seq));
        let out = svc.finish();
        assert_eq!(out.dropped_late, 1);
        let x = &out.exporters[0];
        assert_eq!(x.name, "X");
        assert_eq!(x.dropped, 1);
        assert_eq!(
            out.windows[0].records, 40,
            "the dropped straggler is not in the window"
        );
    }

    #[test]
    fn shuffled_arrival_within_lateness_is_equivalent() {
        let day = Day(0);
        let mut recs = day_records(day);
        let in_order_result = {
            let mut svc = StreamService::start(StreamConfig::default(), |_| rib());
            let mut seq = 0;
            svc.push_chunk("A", &encode(&recs, &mut seq));
            svc.finish()
        };
        // Reverse arrival order entirely — all inside one day, so every
        // record stays within the lateness bound.
        recs.reverse();
        let reversed_result = {
            let mut svc = StreamService::start(StreamConfig::default(), |_| rib());
            let mut seq = 0;
            svc.push_chunk("A", &encode(&recs, &mut seq));
            svc.finish()
        };
        let a = &in_order_result.windows[0].result;
        let b = &reversed_result.windows[0].result;
        assert_eq!(a.dark, b.dark);
        assert_eq!(a.unclean, b.unclean);
        assert_eq!(a.gray, b.gray);
        assert_eq!(a.funnel, b.funnel);
        assert!(reversed_result.late > 0, "reversal produced late records");
        assert_eq!(reversed_result.dropped_late, 0);
    }

    #[test]
    fn drop_newest_backpressure_is_counted() {
        // A tiny queue with no consumers able to keep up: capacity 1 and
        // a worker that must contend with a flood of batches. Shedding
        // must be counted, never silent.
        let cfg = StreamConfig {
            queue_capacity: 1,
            ingest_threads: 1,
            overflow: OverflowPolicy::DropNewest,
            ..StreamConfig::default()
        };
        let mut svc = StreamService::start(cfg, |_| rib());
        let mut seq = 0;
        let mut pushed = 0u64;
        for i in 0..200u32 {
            let r = record(Day(0), u64::from(i), 0x1400_0100 + i * 256, 1);
            svc.push_chunk("A", &encode(&[r], &mut seq));
            pushed += 1;
        }
        let out = svc.finish();
        let kept = out.windows[0].records;
        assert_eq!(
            kept + out.dropped_backpressure,
            pushed,
            "every record is either ingested or counted shed"
        );
        assert_eq!(out.queue.high_water_mark, 1);
    }

    #[test]
    fn garbage_chunks_surface_as_decode_errors() {
        let mut svc = StreamService::start(StreamConfig::default(), |_| rib());
        let mut seq = 0;
        svc.push_chunk("A", &encode(&day_records(Day(0)), &mut seq));
        svc.push_chunk("A", &[0xff; 64]);
        svc.push_chunk("A", &encode(&day_records(Day(1)), &mut seq));
        let out = svc.finish();
        let a = &out.exporters[0];
        assert!(a.decode_errors > 0);
        assert_eq!(a.flows, 80, "both clean chunks decoded fully");
    }
}
