//! The assembled streaming service: IPFIX byte chunks in, per-window
//! and combined pipeline results out.
//!
//! # Threading model
//!
//! One *producer* (the caller of [`StreamService::push_chunk`]) and N
//! *ingest workers*. The producer owns everything whose order matters
//! for determinism: message framing and decoding, the window gate
//! (late/dropped decisions against the watermark), and window-close
//! scheduling. Workers only do the order-*independent* part — folding
//! records into per-day [`ShardedTrafficStats`] — so the nondeterminism
//! of which worker picks up which batch cannot affect results: each
//! worker accumulates its share into its own per-day stats, and at
//! window close the per-worker parts are merged in worker-index order
//! (merging is commutative content-wise; the fixed order makes the walk
//! itself deterministic too).
//!
//! Window close uses an epoch barrier: the producer counts records
//! pushed, workers count records processed, and close waits until the
//! two agree — at that point every accepted record of the closing day
//! is in some worker's accumulator, and the merged window stats equal a
//! batch ingest of exactly the gated record set.

use crate::batch::{BatchPool, RecordBatch};
use crate::collector::StreamCollector;
use crate::queue::{BoundedQueue, OverflowPolicy, PushOutcome, QueueStats};
use crate::scheduler::{
    CombinedReport, SchedulerConfig, WindowReport, WindowScheduler, WindowSink,
};
use crate::window::{Gate, WindowTracker};
use mt_core::pipeline::PipelineConfig;
use mt_flow::{FlowRecord, ShardedTrafficStats, StatsLayout};
use mt_obs::{Counter, MetricsRegistry};
use mt_types::{Asn, Day, FxHashMap, PrefixTrie, SimDuration};
use mt_wire::ipfix::IpfixFlow;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Configuration of the whole streaming stack.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Shards per window accumulator (must match across the run).
    pub num_shards: usize,
    /// Per-host size threshold (must match the pipeline's).
    pub size_threshold: u16,
    /// Storage layout of the window accumulators: hashmap-backed shards
    /// (the default) or columnar slot-range shards over a fixed
    /// announced-space index. With the columnar layout the slot index
    /// must cover every day's announced space (window close asserts
    /// matching fingerprints when merging worker accumulators).
    pub layout: StatsLayout,
    /// Ingest worker threads.
    pub ingest_threads: usize,
    /// Worker threads for each window's `run_sharded`.
    pub pipeline_threads: usize,
    /// Capacity of the collector→ingest queue, in batches.
    pub queue_capacity: usize,
    /// What a full queue does to new batches.
    pub overflow: OverflowPolicy,
    /// How far event time may lag the stream maximum before a record's
    /// window closes without it.
    pub allowed_lateness: SimDuration,
    /// The exporters' packet sampling rate.
    pub sampling_rate: u32,
    /// Pipeline thresholds.
    pub pipeline: PipelineConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            num_shards: mt_flow::sharded::DEFAULT_SHARDS,
            size_threshold: mt_flow::stats::DEFAULT_SIZE_THRESHOLD,
            layout: StatsLayout::Map,
            ingest_threads: 2,
            pipeline_threads: 2,
            queue_capacity: 64,
            overflow: OverflowPolicy::Block,
            allowed_lateness: SimDuration::hours(2),
            sampling_rate: 1,
            pipeline: PipelineConfig::default(),
        }
    }
}

/// Per-exporter lifetime counters, as reported by [`StreamOutput`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExporterCounters {
    /// Exporter name.
    pub name: String,
    /// Bytes received.
    pub bytes: u64,
    /// IPFIX messages decoded.
    pub messages: u64,
    /// Flow records decoded.
    pub flows: u64,
    /// Decode trouble: framing errors plus skipped sets/records.
    pub decode_errors: u64,
    /// Records accepted behind the watermark.
    pub late: u64,
    /// Records dropped because their window had closed.
    pub dropped: u64,
}

/// One consistent view of the whole streaming stack's health: every
/// record the collector decoded is accounted for exactly once across
/// the gate, the queue, and the ingest workers.
///
/// The accounting identities ([`HealthSnapshot::check_invariants`]):
///
/// - `decoded == on_time + late + dropped_late` — the gate sees every
///   decoded record and sorts it into exactly one bucket;
/// - `on_time + late == ingested + in_flight + dropped_backpressure +
///   rejected_closed` — every accepted record is folded by a worker,
///   still queued, shed by backpressure, or rejected by a closed queue;
/// - the per-exporter vectors sum to the global gate counters.
///
/// Taken at a quiescent point (after a flush barrier or [`finish`]),
/// `in_flight` is zero and the identities are exact equalities over
/// completed work.
///
/// [`finish`]: StreamService::finish
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Flow records decoded across all exporters.
    pub decoded: u64,
    /// Records accepted at or ahead of the watermark.
    pub on_time: u64,
    /// Records accepted behind the watermark (within allowed lateness).
    pub late: u64,
    /// Records dropped at the window gate (window already closed).
    pub dropped_late: u64,
    /// Records shed by queue backpressure (`DropNewest` only).
    pub dropped_backpressure: u64,
    /// Records rejected because the queue was closed (shutdown races).
    pub rejected_closed: u64,
    /// Records folded into window accumulators by the ingest workers.
    pub ingested: u64,
    /// Records accepted into the queue but not yet folded.
    pub in_flight: u64,
    /// Collector→ingest queue counters (batches, not records).
    pub queue: QueueStats,
    /// Current queue depth in batches.
    pub queue_depth: u64,
    /// Windows still open.
    pub windows_open: u64,
    /// Windows closed and run through the pipeline.
    pub windows_closed: u64,
    /// Per-exporter counters, ordered by exporter name.
    pub exporters: Vec<ExporterCounters>,
}

impl HealthSnapshot {
    /// Verifies the accounting identities, returning the first
    /// violation as a message. Exact at quiescent points; mid-stream
    /// the only slack is `in_flight`, which this snapshot carries
    /// explicitly, so the identities still hold.
    pub fn check_invariants(&self) -> Result<(), String> {
        let gate_total = self.on_time + self.late + self.dropped_late;
        if self.decoded != gate_total {
            return Err(format!(
                "decoded ({}) != on_time + late + dropped_late ({gate_total})",
                self.decoded
            ));
        }
        let accepted = self.on_time + self.late;
        let accounted =
            self.ingested + self.in_flight + self.dropped_backpressure + self.rejected_closed;
        if accepted != accounted {
            return Err(format!(
                "accepted ({accepted}) != ingested + in_flight + backpressure + rejected_closed ({accounted})"
            ));
        }
        let attempts = self.queue.attempts();
        let outcomes = self.queue.pushed + self.queue.dropped + self.queue.rejected_closed;
        if attempts != outcomes {
            return Err(format!(
                "queue attempts ({attempts}) != pushed + dropped + rejected_closed ({outcomes})"
            ));
        }
        let (mut flows, mut late, mut dropped) = (0, 0, 0);
        for e in &self.exporters {
            flows += e.flows;
            late += e.late;
            dropped += e.dropped;
        }
        if flows != self.decoded {
            return Err(format!(
                "per-exporter flows ({flows}) != decoded ({})",
                self.decoded
            ));
        }
        if late != self.late || dropped != self.dropped_late {
            return Err(format!(
                "per-exporter late/dropped ({late}/{dropped}) != global ({}/{})",
                self.late, self.dropped_late
            ));
        }
        Ok(())
    }
}

/// Everything a finished streaming run produced.
#[derive(Debug)]
pub struct StreamOutput {
    /// Per-window reports, in close (day) order.
    pub windows: Vec<WindowReport>,
    /// The combined report after each window close (last = final).
    pub combined: Vec<CombinedReport>,
    /// Per-exporter counters, ordered by exporter name.
    pub exporters: Vec<ExporterCounters>,
    /// Collector→ingest queue statistics.
    pub queue: QueueStats,
    /// Records accepted at or ahead of the watermark.
    pub on_time: u64,
    /// Records accepted behind the watermark (within allowed lateness).
    pub late: u64,
    /// Records dropped at the window gate (window already closed).
    pub dropped_late: u64,
    /// Records shed by queue backpressure (`DropNewest` only).
    pub dropped_backpressure: u64,
    /// The final health document (quiescent: `in_flight` is zero).
    pub health: HealthSnapshot,
    /// The run's metrics registry, still holding every counter for
    /// exposition after the service wound down.
    pub registry: Arc<MetricsRegistry>,
}

#[derive(Default)]
struct Progress {
    pushed: u64,
    processed: u64,
}

/// State shared with the ingest workers.
struct Shared {
    queue: BoundedQueue<RecordBatch>,
    /// Recycles batch buffers between the producer and the workers so
    /// steady-state ingest allocates nothing per batch.
    pool: BatchPool,
    /// Per-worker per-day accumulators, indexed by worker.
    workers: Vec<Mutex<FxHashMap<Day, ShardedTrafficStats>>>,
    /// Per-worker `mt_ingest_records_total` counters, indexed like
    /// `workers`; incremented at the event site as batches are folded.
    ingest_counters: Vec<Counter>,
    progress: Mutex<Progress>,
    drained: Condvar,
    num_shards: usize,
    size_threshold: u16,
    layout: StatsLayout,
}

impl Shared {
    /// An empty window accumulator with the configured shape.
    fn empty_stats(&self) -> ShardedTrafficStats {
        ShardedTrafficStats::with_layout(self.num_shards, self.size_threshold, self.layout.clone())
    }
}

/// The streaming stack: collector sessions, window gate, bounded queue,
/// ingest workers, and the window scheduler.
pub struct StreamService<F> {
    cfg: StreamConfig,
    collector: StreamCollector,
    tracker: WindowTracker,
    scheduler: WindowScheduler<F>,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    windows: Vec<WindowReport>,
    combined: Vec<CombinedReport>,
    /// Records enqueued per open window.
    window_records: FxHashMap<Day, u64>,
    /// Destination-port packet histogram per open window; counts
    /// exactly the records `window_records` counts (accepted pushes).
    window_ports: FxHashMap<Day, FxHashMap<u16, u64>>,
    /// Reusable per-batch port histogram scratch.
    port_scratch: FxHashMap<u16, u64>,
    /// Per-exporter window-gate counters: (late, dropped).
    gate_counts: BTreeMap<String, (u64, u64)>,
    dropped_backpressure: u64,
    /// Records lost to a queue closed mid-push (shutdown races).
    rejected_closed: u64,
    registry: Arc<MetricsRegistry>,
    windows_closed_counter: Counter,
    /// Reusable decode buffer: one allocation serves every chunk.
    decode_buf: Vec<IpfixFlow>,
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> StreamService<F> {
    /// Starts the service: spawns the ingest workers and returns the
    /// producer-side handle. `rib_of` supplies each day's RIB snapshot
    /// at window close.
    pub fn start(cfg: StreamConfig, rib_of: F) -> Self {
        Self::start_with_registry(cfg, rib_of, Arc::new(MetricsRegistry::new()))
    }

    /// Like [`start`](Self::start), but publishing into a
    /// caller-supplied registry (e.g. one shared with other services).
    pub fn start_with_registry(
        cfg: StreamConfig,
        rib_of: F,
        registry: Arc<MetricsRegistry>,
    ) -> Self {
        assert!(cfg.ingest_threads >= 1);
        let ingest_counters = (0..cfg.ingest_threads)
            .map(|i| {
                let worker = i.to_string();
                registry.counter_with(
                    "mt_ingest_records_total",
                    &[("worker", worker.as_str())],
                    "Records folded into window accumulators by this worker.",
                )
            })
            .collect();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity, cfg.overflow),
            // At most queue_capacity batches wait, one is in each
            // worker's hands, and the producer holds a few while
            // grouping — that bounds how many buffers recycling needs.
            pool: BatchPool::new(cfg.queue_capacity + cfg.ingest_threads + 1),
            workers: (0..cfg.ingest_threads)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            ingest_counters,
            progress: Mutex::new(Progress::default()),
            drained: Condvar::new(),
            num_shards: cfg.num_shards,
            size_threshold: cfg.size_threshold,
            layout: cfg.layout.clone(),
        });
        let handles = (0..cfg.ingest_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || ingest_worker(&shared, i))
            })
            .collect();
        let scheduler = WindowScheduler::new(
            rib_of,
            SchedulerConfig {
                sampling_rate: cfg.sampling_rate,
                pipeline: cfg.pipeline.clone(),
                threads: cfg.pipeline_threads,
            },
        )
        .with_registry(&registry);
        let windows_closed_counter = registry.counter(
            "mt_window_closed_total",
            "Windows closed and run through the pipeline.",
        );
        StreamService {
            tracker: WindowTracker::new(cfg.allowed_lateness),
            cfg,
            collector: StreamCollector::new(),
            scheduler,
            shared,
            handles,
            windows: Vec::new(),
            combined: Vec::new(),
            window_records: FxHashMap::default(),
            window_ports: FxHashMap::default(),
            port_scratch: FxHashMap::default(),
            gate_counts: BTreeMap::new(),
            dropped_backpressure: 0,
            rejected_closed: 0,
            registry,
            windows_closed_counter,
            decode_buf: Vec::new(),
        }
    }

    /// The run's metrics registry. [`health`](Self::health) republishes
    /// the legacy counters into it before every snapshot.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The service configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Installs a window sink on the scheduler: an observer invoked
    /// after every window close with the window's stats, port
    /// histogram, and both pipeline results — how the results store
    /// persists windows as they close.
    pub fn set_window_sink(&mut self, sink: WindowSink) {
        self.scheduler.set_sink(sink);
    }

    /// The per-exporter collector sessions (live counters).
    pub fn collector(&self) -> &StreamCollector {
        &self.collector
    }

    /// The window tracker (watermark, gate counters).
    pub fn tracker(&self) -> &WindowTracker {
        &self.tracker
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> usize {
        self.windows.len()
    }

    /// Feeds one chunk of `exporter`'s IPFIX byte stream. Complete
    /// messages are decoded, their records gated against the watermark,
    /// accepted records handed to the ingest workers, and any windows
    /// the advancing watermark closed are run to completion.
    pub fn push_chunk(&mut self, exporter: &str, chunk: &[u8]) {
        let mut decoded = std::mem::take(&mut self.decode_buf);
        decoded.clear();
        self.collector.feed_into(exporter, chunk, &mut decoded);
        self.ingest_decoded(exporter, decoded);
    }

    /// Feeds one UDP datagram from `exporter`, which must carry whole
    /// IPFIX message(s). Rejected datagrams (returning `false`) are
    /// counted on the exporter's session and contribute no records; the
    /// session's templates and the stream-framing buffer are untouched,
    /// so neither transport desyncs the other.
    pub fn push_datagram(&mut self, exporter: &str, datagram: &[u8]) -> bool {
        let mut decoded = std::mem::take(&mut self.decode_buf);
        decoded.clear();
        let accepted = self
            .collector
            .feed_datagram_into(exporter, datagram, &mut decoded);
        self.ingest_decoded(exporter, decoded);
        accepted
    }

    /// Gates decoded records against the watermark, batches them per
    /// day, pushes to the worker queue, and closes any ready windows —
    /// the shared back half of both transports' push paths. Takes and
    /// returns the reusable decode buffer.
    fn ingest_decoded(&mut self, exporter: &str, decoded: Vec<IpfixFlow>) {
        if decoded.is_empty() {
            self.decode_buf = decoded;
            self.close_ready_windows();
            return;
        }
        let gate = self.gate_counts.entry(exporter.to_owned()).or_default();
        // Group the chunk's accepted records per day so one queue item
        // is one (day, records) batch; record buffers come from the
        // shared pool so the workers' returns are reused here.
        let shared = Arc::clone(&self.shared);
        let mut by_day: BTreeMap<Day, Vec<FlowRecord>> = BTreeMap::new();
        for f in &decoded {
            let r = FlowRecord::from_ipfix(f);
            match self.tracker.observe(r.start) {
                Gate::Accept { day, late } => {
                    if late {
                        gate.0 += 1;
                    }
                    by_day
                        .entry(day)
                        .or_insert_with(|| shared.pool.take())
                        .push(r);
                }
                Gate::TooLate { .. } => gate.1 += 1,
            }
        }
        self.decode_buf = decoded;
        for (day, records) in by_day {
            let n = records.len() as u64;
            // Tally the batch's destination ports up front: the record
            // buffer moves into the queue, and only an accepted push
            // may count toward the window (shed/closed batches never
            // reach the accumulators).
            self.port_scratch.clear();
            for r in &records {
                *self.port_scratch.entry(r.dst_port).or_default() += r.packets;
            }
            match self.shared.queue.push(RecordBatch { day, records }) {
                PushOutcome::Accepted => {
                    crate::sync::lock(&self.shared.progress).pushed += n; // lock: stream.progress
                    *self.window_records.entry(day).or_default() += n;
                    let ports = self.window_ports.entry(day).or_default();
                    for (&port, &packets) in &self.port_scratch {
                        *ports.entry(port).or_default() += packets;
                    }
                }
                PushOutcome::Shed => self.dropped_backpressure += n,
                PushOutcome::Closed => self.rejected_closed += n,
            }
        }
        self.close_ready_windows();
    }

    /// Closes every window the current watermark allows.
    fn close_ready_windows(&mut self) {
        let closable = self.tracker.take_closable();
        if closable.is_empty() {
            return;
        }
        self.flush();
        for day in closable {
            self.close_window(day);
        }
    }

    /// Epoch barrier: waits until the workers have ingested every
    /// record pushed so far.
    fn flush(&self) {
        let g = crate::sync::lock(&self.shared.progress); // lock: stream.progress
        let _g = crate::sync::wait_while(&self.shared.drained, g, |p| p.processed < p.pushed);
    }

    /// Merges the per-worker accumulators of `day` (worker-index order)
    /// and hands the window to the scheduler. Callers must flush first.
    fn close_window(&mut self, day: Day) {
        let mut merged: Option<ShardedTrafficStats> = None;
        for w in &self.shared.workers {
            let part = crate::sync::lock(w).remove(&day); // lock: stream.workers
            if let Some(part) = part {
                match &mut merged {
                    None => merged = Some(part),
                    Some(m) => m.merge(&part),
                }
            }
        }
        let stats = merged.unwrap_or_else(|| self.shared.empty_stats());
        let records = self.window_records.remove(&day).unwrap_or(0);
        for (i, load) in stats.shard_loads().into_iter().enumerate() {
            let shard = i.to_string();
            self.registry
                .gauge_with(
                    "mt_flow_shard_blocks",
                    &[("shard", shard.as_str())],
                    "Destination /24s held by this shard at the last window close.",
                )
                .set(load as u64);
        }
        let mut ports: Vec<(u16, u64)> = self
            .window_ports
            .remove(&day)
            .map(|m| m.into_iter().collect())
            .unwrap_or_default();
        ports.sort_unstable();
        let (window, combined) = self.scheduler.close_with_ports(day, records, stats, &ports);
        self.windows.push(window);
        self.combined.push(combined);
        self.windows_closed_counter.inc();
    }

    /// Builds the per-exporter counter vector, ordered by name.
    fn exporter_counters(&self) -> Vec<ExporterCounters> {
        self.collector
            .sessions()
            .map(|(name, s)| {
                let (late, dropped) = self.gate_counts.get(name).copied().unwrap_or_default();
                ExporterCounters {
                    name: name.to_owned(),
                    bytes: s.bytes,
                    messages: s.messages,
                    flows: s.flows,
                    decode_errors: s.decode_errors(),
                    late,
                    dropped,
                }
            })
            .collect()
    }

    /// Takes a [`HealthSnapshot`] of the whole stack and republishes
    /// every legacy counter (queue stats, session counters, gate
    /// tallies) into the registry, so
    /// [`Snapshot::render_prometheus_text`](mt_obs::Snapshot) and the
    /// snapshot's JSON form carry the same values the bespoke structs
    /// report. Callable mid-stream; exact at quiescent points (the
    /// `in_flight` field carries the only mid-stream slack).
    pub fn health(&self) -> HealthSnapshot {
        let exporters = self.exporter_counters();
        let queue = self.shared.queue.stats();
        let ingested: u64 = self.shared.ingest_counters.iter().map(Counter::get).sum();
        let accepted = self.tracker.on_time + self.tracker.late;
        let snapshot = HealthSnapshot {
            decoded: exporters.iter().map(|e| e.flows).sum(),
            on_time: self.tracker.on_time,
            late: self.tracker.late,
            dropped_late: self.tracker.dropped,
            dropped_backpressure: self.dropped_backpressure,
            rejected_closed: self.rejected_closed,
            ingested,
            in_flight: accepted - ingested - self.dropped_backpressure - self.rejected_closed,
            queue,
            queue_depth: self.shared.queue.len() as u64,
            windows_open: self.tracker.open_days().count() as u64,
            windows_closed: self.windows.len() as u64,
            exporters,
        };
        self.republish(&snapshot);
        snapshot
    }

    /// Mirrors the snapshot's externally maintained totals into the
    /// registry (see [`Counter::set_total`] for the monotonicity
    /// contract; every source here is a lifetime counter).
    fn republish(&self, h: &HealthSnapshot) {
        republish_health(&self.registry, h);
    }
}

/// Mirrors a [`HealthSnapshot`]'s externally maintained totals into
/// `registry` — shared by [`StreamService`] and the multi-producer
/// [`crate::multi::MultiStreamService`], which report the same series.
pub(crate) fn republish_health(r: &MetricsRegistry, h: &HealthSnapshot) {
    for e in &h.exporters {
        let labels = [("exporter", e.name.as_str())];
        let mirror = [
            ("mt_stream_bytes_total", e.bytes, "Bytes received."),
            (
                "mt_stream_messages_total",
                e.messages,
                "IPFIX messages decoded.",
            ),
            ("mt_stream_flows_total", e.flows, "Flow records decoded."),
            (
                "mt_stream_decode_errors_total",
                e.decode_errors,
                "Framing errors plus skipped sets/records.",
            ),
            (
                "mt_stream_late_total",
                e.late,
                "Records accepted behind the watermark.",
            ),
            (
                "mt_stream_dropped_total",
                e.dropped,
                "Records dropped at the window gate.",
            ),
        ];
        for (name, value, help) in mirror {
            r.counter_with(name, &labels, help).set_total(value);
        }
    }
    r.counter("mt_window_on_time_total", "Records accepted on time.")
        .set_total(h.on_time);
    r.counter("mt_window_late_total", "Records accepted late.")
        .set_total(h.late);
    r.counter("mt_window_dropped_total", "Records dropped at the gate.")
        .set_total(h.dropped_late);
    r.counter(
        "mt_queue_pushed_total",
        "Batches accepted into the collector→ingest queue.",
    )
    .set_total(h.queue.pushed);
    r.counter("mt_queue_popped_total", "Batches handed to ingest workers.")
        .set_total(h.queue.popped);
    r.counter(
        "mt_queue_shed_total",
        "Batches shed by DropNewest backpressure.",
    )
    .set_total(h.queue.dropped);
    r.counter(
        "mt_queue_rejected_closed_total",
        "Batches rejected because the queue was closed.",
    )
    .set_total(h.queue.rejected_closed);
    r.gauge("mt_queue_depth", "Current queue depth in batches.")
        .set(h.queue_depth);
    r.gauge("mt_queue_high_water", "Maximum queue depth ever reached.")
        .set(h.queue.high_water_mark as u64);
    r.counter(
        "mt_stream_backpressure_records_total",
        "Records shed by queue backpressure.",
    )
    .set_total(h.dropped_backpressure);
    r.counter(
        "mt_stream_rejected_closed_records_total",
        "Records lost to a queue closed mid-push.",
    )
    .set_total(h.rejected_closed);
    r.gauge("mt_window_open", "Windows currently open.")
        .set(h.windows_open);
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> StreamService<F> {
    /// Ends the stream: flushes in-flight records, closes every
    /// remaining open window in day order, stops the workers, and
    /// returns the run's full output.
    pub fn finish(mut self) -> StreamOutput {
        self.flush();
        for day in self.tracker.drain_open() {
            self.close_window(day);
        }
        self.shared.queue.close();
        for h in self.handles.drain(..) {
            // check: allow(no_panic, "join() errs only if the worker panicked; re-raising on the coordinator is intended")
            h.join().expect("ingest worker panicked");
        }
        let health = self.health();
        debug_assert_eq!(health.in_flight, 0, "finish is a quiescent point");
        StreamOutput {
            exporters: health.exporters.clone(),
            queue: health.queue,
            on_time: health.on_time,
            late: health.late,
            dropped_late: health.dropped_late,
            dropped_backpressure: health.dropped_backpressure,
            windows: self.windows,
            combined: self.combined,
            health,
            registry: self.registry,
        }
    }
}

/// Ingest worker loop: pop batches, fold records into this worker's
/// per-day accumulator, and report progress for the flush barrier.
fn ingest_worker(shared: &Shared, index: usize) {
    while let Some(batch) = shared.queue.pop() {
        let n = batch.records.len() as u64;
        {
            let mut days = crate::sync::lock(&shared.workers[index]); // lock: stream.workers
            let stats = days
                .entry(batch.day)
                .or_insert_with(|| shared.empty_stats());
            for r in &batch.records {
                stats.ingest(r);
            }
        }
        shared.pool.put(batch.records);
        // Counted before the progress update so the flush barrier
        // (processed == pushed) also implies the ingest counters are
        // complete — health snapshots at quiescent points stay exact.
        shared.ingest_counters[index].add(n);
        let mut p = crate::sync::lock(&shared.progress); // lock: stream.progress
        p.processed += n;
        drop(p);
        shared.drained.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_core::PipelineEngine;
    use mt_types::{Ipv4, Prefix};
    use mt_wire::ipfix;

    fn rib() -> PrefixTrie<Asn> {
        [("20.0.0.0/8".parse::<Prefix>().unwrap(), Asn(65_000))]
            .into_iter()
            .collect()
    }

    fn record(day: Day, offset: u64, dst: u32, packets: u64) -> FlowRecord {
        FlowRecord {
            start: day.start() + SimDuration::secs(offset),
            src: Ipv4::new(9, 9, 9, 9),
            dst: Ipv4(dst),
            src_port: 40_000,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * 40,
        }
    }

    fn encode(records: &[FlowRecord], seq: &mut u32) -> Vec<u8> {
        let flows: Vec<ipfix::IpfixFlow> = records.iter().map(FlowRecord::to_ipfix).collect();
        ipfix::encode_messages(&flows, 0, 1, seq, 50)
            .into_iter()
            .flatten()
            .collect()
    }

    fn day_records(day: Day) -> Vec<FlowRecord> {
        (0..40u32)
            .map(|i| {
                record(
                    day,
                    u64::from(i) * 600,
                    0x1400_0100 + (i % 13) * 256 + day.0 * 7,
                    1 + u64::from(i % 4),
                )
            })
            .collect()
    }

    #[test]
    fn streamed_windows_match_batch_per_day() {
        for threads in [1, 3] {
            let cfg = StreamConfig {
                ingest_threads: threads,
                allowed_lateness: SimDuration::hours(1),
                ..StreamConfig::default()
            };
            let mut svc = StreamService::start(cfg.clone(), |_| rib());
            let mut seq = 0;
            let mut all = Vec::new();
            for d in 0..3 {
                let recs = day_records(Day(d));
                let bytes = encode(&recs, &mut seq);
                // Feed in awkward chunk sizes to exercise framing.
                for chunk in bytes.chunks(97) {
                    svc.push_chunk("CE1", chunk);
                }
                all.push(recs);
            }
            assert_eq!(
                svc.windows_closed(),
                2,
                "days 0 and 1 closed mid-stream at {threads} threads"
            );
            let out = svc.finish();
            assert_eq!(out.windows.len(), 3);
            assert_eq!(out.dropped_late, 0);
            assert_eq!(out.dropped_backpressure, 0);

            let engine = PipelineEngine::standard();
            for (w, recs) in out.windows.iter().zip(&all) {
                assert_eq!(w.records, recs.len() as u64);
                let batch_stats = ShardedTrafficStats::from_records(cfg.num_shards, recs);
                let batch = engine.run_sharded(&batch_stats, &rib(), 1, 1, &cfg.pipeline, 2);
                assert_eq!(w.result.dark, batch.dark, "day {}", w.day.0);
                assert_eq!(w.result.unclean, batch.unclean);
                assert_eq!(w.result.gray, batch.gray);
                assert_eq!(w.result.funnel, batch.funnel);
            }
            // Combined final result equals batch over everything.
            let flat: Vec<FlowRecord> = all.iter().flatten().cloned().collect();
            let batch_stats = ShardedTrafficStats::from_records(cfg.num_shards, &flat);
            let batch = engine.run_sharded(&batch_stats, &rib(), 1, 3, &cfg.pipeline, 2);
            let fin = out.combined.last().unwrap();
            assert_eq!(fin.days, 3);
            assert_eq!(fin.result.dark, batch.dark);
            assert_eq!(fin.result.funnel, batch.funnel);
        }
    }

    #[test]
    fn datagram_transport_matches_stream_transport() {
        let run = |datagrams: bool| {
            let cfg = StreamConfig {
                ingest_threads: 2,
                allowed_lateness: SimDuration::hours(1),
                ..StreamConfig::default()
            };
            let mut svc = StreamService::start(cfg, |_| rib());
            let mut seq = 0;
            for d in 0..3 {
                let recs = day_records(Day(d));
                let flows: Vec<ipfix::IpfixFlow> = recs.iter().map(FlowRecord::to_ipfix).collect();
                // One datagram per message, vs the same bytes as a stream.
                for msg in ipfix::encode_messages(&flows, 0, 1, &mut seq, 7) {
                    if datagrams {
                        assert!(svc.push_datagram("CE1", &msg));
                    } else {
                        svc.push_chunk("CE1", &msg);
                    }
                }
            }
            svc.finish()
        };
        let via_stream = run(false);
        let via_datagram = run(true);
        assert_eq!(via_stream.windows.len(), via_datagram.windows.len());
        for (s, d) in via_stream.windows.iter().zip(&via_datagram.windows) {
            assert_eq!(s.records, d.records, "day {}", s.day.0);
            assert_eq!(s.result.dark, d.result.dark);
            assert_eq!(s.result.funnel, d.result.funnel);
        }
        via_datagram.health.check_invariants().unwrap();
    }

    #[test]
    fn rejected_datagram_is_counted_and_contributes_nothing() {
        let cfg = StreamConfig {
            ingest_threads: 1,
            allowed_lateness: SimDuration::hours(1),
            ..StreamConfig::default()
        };
        let mut svc = StreamService::start(cfg, |_| rib());
        let mut seq = 0;
        let good = encode(&day_records(Day(0)), &mut seq);
        assert!(svc.push_datagram("U", &good));
        let mut torn = encode(&day_records(Day(1)), &mut seq);
        torn.truncate(torn.len() - 9);
        assert!(!svc.push_datagram("U", &torn), "torn datagram rejected");
        let out = svc.finish();
        assert_eq!(out.windows.len(), 1, "only day 0 produced records");
        let health = &out.health;
        health.check_invariants().unwrap();
        let u = health
            .exporters
            .iter()
            .find(|e| e.name == "U")
            .expect("session exists");
        assert_eq!(u.flows, 40);
        assert_eq!(u.decode_errors, 1, "the torn datagram was counted");
    }

    #[test]
    fn columnar_layout_streams_bit_identical_to_map_layout() {
        // Slot index over the destination space only: the 9.9.9.9
        // sources have no slot and exercise the overflow path.
        let slot_trie: PrefixTrie<()> = [("20.0.0.0/8".parse::<Prefix>().unwrap(), ())]
            .into_iter()
            .collect();
        let slots = Arc::new(mt_types::Slot24Index::build(&mt_types::RibIndex::build(
            &slot_trie,
        )));
        let run = |layout: StatsLayout| {
            let cfg = StreamConfig {
                ingest_threads: 3,
                allowed_lateness: SimDuration::hours(1),
                layout,
                ..StreamConfig::default()
            };
            let mut svc = StreamService::start(cfg, |_| rib());
            let mut seq = 0;
            for d in 0..3 {
                svc.push_chunk("CE1", &encode(&day_records(Day(d)), &mut seq));
            }
            svc.finish()
        };
        let map = run(StatsLayout::Map);
        let columnar = run(StatsLayout::Columnar(slots));
        assert_eq!(map.windows.len(), columnar.windows.len());
        for (m, c) in map.windows.iter().zip(&columnar.windows) {
            assert_eq!(m.records, c.records, "day {}", m.day.0);
            assert_eq!(m.result.dark, c.result.dark, "day {}", m.day.0);
            assert_eq!(m.result.unclean, c.result.unclean);
            assert_eq!(m.result.gray, c.result.gray);
            assert_eq!(m.result.funnel, c.result.funnel);
        }
        for (m, c) in map.combined.iter().zip(&columnar.combined) {
            assert_eq!(
                m.result.dark, c.result.dark,
                "combined after {} days",
                m.days
            );
            assert_eq!(m.result.funnel, c.result.funnel);
        }
    }

    #[test]
    fn too_late_records_are_dropped_and_counted() {
        let cfg = StreamConfig {
            allowed_lateness: SimDuration::hours(1),
            ..StreamConfig::default()
        };
        let mut svc = StreamService::start(cfg, |_| rib());
        let mut seq = 0;
        svc.push_chunk("X", &encode(&day_records(Day(0)), &mut seq));
        svc.push_chunk("X", &encode(&day_records(Day(2)), &mut seq));
        assert_eq!(svc.windows_closed(), 1, "day 0 closed");
        // A straggler for day 0 after its window closed.
        svc.push_chunk("X", &encode(&[record(Day(0), 3, 0x1400_0100, 1)], &mut seq));
        let out = svc.finish();
        assert_eq!(out.dropped_late, 1);
        let x = &out.exporters[0];
        assert_eq!(x.name, "X");
        assert_eq!(x.dropped, 1);
        assert_eq!(
            out.windows[0].records, 40,
            "the dropped straggler is not in the window"
        );
    }

    #[test]
    fn shuffled_arrival_within_lateness_is_equivalent() {
        let day = Day(0);
        let mut recs = day_records(day);
        let in_order_result = {
            let mut svc = StreamService::start(StreamConfig::default(), |_| rib());
            let mut seq = 0;
            svc.push_chunk("A", &encode(&recs, &mut seq));
            svc.finish()
        };
        // Reverse arrival order entirely — all inside one day, so every
        // record stays within the lateness bound.
        recs.reverse();
        let reversed_result = {
            let mut svc = StreamService::start(StreamConfig::default(), |_| rib());
            let mut seq = 0;
            svc.push_chunk("A", &encode(&recs, &mut seq));
            svc.finish()
        };
        let a = &in_order_result.windows[0].result;
        let b = &reversed_result.windows[0].result;
        assert_eq!(a.dark, b.dark);
        assert_eq!(a.unclean, b.unclean);
        assert_eq!(a.gray, b.gray);
        assert_eq!(a.funnel, b.funnel);
        assert!(reversed_result.late > 0, "reversal produced late records");
        assert_eq!(reversed_result.dropped_late, 0);
    }

    #[test]
    fn drop_newest_backpressure_is_counted() {
        // A tiny queue with no consumers able to keep up: capacity 1 and
        // a worker that must contend with a flood of batches. Shedding
        // must be counted, never silent.
        let cfg = StreamConfig {
            queue_capacity: 1,
            ingest_threads: 1,
            overflow: OverflowPolicy::DropNewest,
            ..StreamConfig::default()
        };
        let mut svc = StreamService::start(cfg, |_| rib());
        let mut seq = 0;
        let mut pushed = 0u64;
        for i in 0..200u32 {
            let r = record(Day(0), u64::from(i), 0x1400_0100 + i * 256, 1);
            svc.push_chunk("A", &encode(&[r], &mut seq));
            pushed += 1;
        }
        let out = svc.finish();
        let kept = out.windows[0].records;
        assert_eq!(
            kept + out.dropped_backpressure,
            pushed,
            "every record is either ingested or counted shed"
        );
        assert_eq!(out.queue.high_water_mark, 1);
    }

    #[test]
    fn health_snapshot_holds_invariants_and_mirrors_registry() {
        let cfg = StreamConfig {
            ingest_threads: 3,
            allowed_lateness: SimDuration::hours(1),
            ..StreamConfig::default()
        };
        let mut svc = StreamService::start(cfg, |_| rib());
        let mut seq = 0;
        for d in 0..3 {
            let bytes = encode(&day_records(Day(d)), &mut seq);
            for chunk in bytes.chunks(113) {
                svc.push_chunk("CE1", chunk);
            }
        }
        svc.push_chunk("CE2", &[0xde; 40]); // decode garbage
                                            // A straggler for a closed window.
        svc.push_chunk(
            "CE1",
            &encode(&[record(Day(0), 3, 0x1400_0100, 1)], &mut seq),
        );

        // Mid-stream snapshot: identities hold (in_flight absorbs any
        // queued batches).
        let mid = svc.health();
        mid.check_invariants().expect("mid-stream invariants");

        let out = svc.finish();
        let h = &out.health;
        h.check_invariants().expect("final invariants");
        assert_eq!(h.in_flight, 0);
        assert_eq!(h.decoded, 121, "120 day records + 1 straggler");
        assert_eq!(h.dropped_late, 1);
        assert_eq!(h.windows_closed, 3);
        assert_eq!(h.windows_open, 0);
        assert_eq!(h.ingested, h.on_time + h.late);

        // The registry reports exactly the legacy structs' values.
        let snap = out.registry.snapshot();
        assert_eq!(
            snap.scalar("mt_queue_pushed_total", &[]),
            Some(out.queue.pushed)
        );
        assert_eq!(
            snap.scalar("mt_queue_high_water", &[]),
            Some(out.queue.high_water_mark as u64)
        );
        assert_eq!(
            snap.scalar("mt_window_on_time_total", &[]),
            Some(out.on_time)
        );
        assert_eq!(snap.scalar("mt_window_late_total", &[]), Some(out.late));
        assert_eq!(
            snap.scalar("mt_window_dropped_total", &[]),
            Some(out.dropped_late)
        );
        assert_eq!(snap.scalar("mt_window_closed_total", &[]), Some(3));
        for e in &out.exporters {
            let labels = [("exporter", e.name.as_str())];
            assert_eq!(snap.scalar("mt_stream_flows_total", &labels), Some(e.flows));
            assert_eq!(
                snap.scalar("mt_stream_decode_errors_total", &labels),
                Some(e.decode_errors)
            );
            assert_eq!(
                snap.scalar("mt_stream_dropped_total", &labels),
                Some(e.dropped)
            );
        }
        let ingested: u64 = (0..3)
            .map(|w| {
                snap.scalar(
                    "mt_ingest_records_total",
                    &[("worker", w.to_string().as_str())],
                )
                .unwrap_or(0)
            })
            .sum();
        assert_eq!(ingested, h.ingested, "per-worker counters sum to ingested");
        // The scheduler's engine published pipeline metrics here too:
        // two runs (window + combined) per close.
        assert_eq!(snap.scalar("mt_pipeline_runs_total", &[]), Some(6));

        // And the health document round-trips through JSON.
        let json = serde_json::to_string(h).unwrap();
        let back: HealthSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, h);
    }

    #[test]
    fn garbage_chunks_surface_as_decode_errors() {
        let mut svc = StreamService::start(StreamConfig::default(), |_| rib());
        let mut seq = 0;
        svc.push_chunk("A", &encode(&day_records(Day(0)), &mut seq));
        svc.push_chunk("A", &[0xff; 64]);
        svc.push_chunk("A", &encode(&day_records(Day(1)), &mut seq));
        let out = svc.finish();
        let a = &out.exporters[0];
        assert!(a.decode_errors > 0);
        assert_eq!(a.flows, 80, "both clean chunks decoded fully");
    }
}
