//! A bounded multi-producer queue with backpressure accounting.
//!
//! The queue sits between the stream collector (producer) and the
//! ingest workers (consumers). Bounding it is the backpressure
//! mechanism: when ingest falls behind, the producer either blocks
//! ([`OverflowPolicy::Block`] — lossless, the transport's own flow
//! control pushes back) or sheds the newest item
//! ([`OverflowPolicy::DropNewest`] — lossy but non-blocking, with every
//! drop counted). [`QueueStats`] exposes the pushed/popped/dropped
//! counters and the high-water mark, the "how close to the cliff did we
//! get" signal an operator watches.
//!
//! Built on [`std::sync::Mutex`] + [`std::sync::Condvar`]; the vendored
//! `parking_lot` stand-in has no condvar, and none of this is on a
//! per-record hot path (items are batches).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What `push` does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait until a consumer makes room (lossless backpressure).
    Block,
    /// Reject the incoming item, counting it dropped (lossy shedding).
    DropNewest,
}

/// What happened to one pushed item.
///
/// Every push resolves to exactly one variant, and each variant is
/// counted in [`QueueStats`] (`pushed` / `dropped` / `rejected_closed`),
/// so `pushed + dropped + rejected_closed` always equals the number of
/// push attempts — no outcome is invisible to the accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an unchecked push outcome hides shed or rejected items"]
pub enum PushOutcome {
    /// The item entered the queue.
    Accepted,
    /// The item was shed by [`OverflowPolicy::DropNewest`] on a full
    /// queue (counted in [`QueueStats::dropped`]).
    Shed,
    /// The queue was closed — either before the push, or while a
    /// [`OverflowPolicy::Block`] push was waiting for room (counted in
    /// [`QueueStats::rejected_closed`]).
    Closed,
}

impl PushOutcome {
    /// Whether the item entered the queue.
    pub fn is_accepted(self) -> bool {
        self == PushOutcome::Accepted
    }
}

/// Counter snapshot of a queue's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub pushed: u64,
    /// Items handed to consumers.
    pub popped: u64,
    /// Items rejected because the queue was full (DropNewest only).
    pub dropped: u64,
    /// Items rejected because the queue was closed — including a
    /// `Block`-policy push whose wait for room ended in `close()`.
    /// Before this counter existed, that path returned `false` without
    /// touching any stat, so a shutdown could silently lose the items
    /// producers were still holding.
    pub rejected_closed: u64,
    /// Maximum queue depth ever reached.
    pub high_water_mark: usize,
}

impl QueueStats {
    /// Total push attempts: every push lands in exactly one of
    /// `pushed`, `dropped`, or `rejected_closed`.
    pub fn attempts(&self) -> u64 {
        self.pushed + self.dropped + self.rejected_closed
    }
}

struct Inner<T> {
    /// One FIFO for the consumers; each item remembers its lane so the
    /// pop side can release the right lane's quota.
    items: VecDeque<(usize, T)>,
    /// In-queue item count per producer lane, against `lane_capacity`.
    lane_depth: Vec<usize>,
    stats: QueueStats,
    closed: bool,
}

/// A bounded FIFO queue shared between producer and consumer threads.
///
/// # Producer lanes
///
/// The queue supports multiple *producer lanes*
/// ([`with_lanes`](Self::with_lanes)): one FIFO feeds the consumers,
/// but each lane has its own capacity quota, so under
/// [`OverflowPolicy::Block`] a full lane stalls only its own producer —
/// the other lanes keep pushing. This is what lets N event-loop
/// producers share one worker pool without one slow consumer stalling
/// every loop at once. A single-lane queue ([`new`](Self::new)) behaves
/// exactly as before.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    lane_capacity: usize,
    policy: OverflowPolicy,
}

impl<T> BoundedQueue<T> {
    /// Creates a single-lane queue holding at most `capacity` items.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        Self::with_lanes(capacity, 1, policy)
    }

    /// Creates a queue with `lanes` producer lanes, each with its own
    /// quota of `lane_capacity` items (total bound: `lanes *
    /// lane_capacity`).
    pub fn with_lanes(lane_capacity: usize, lanes: usize, policy: OverflowPolicy) -> Self {
        assert!(lane_capacity > 0, "a zero-capacity queue cannot move items");
        assert!(lanes > 0, "a queue needs at least one producer lane");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(lane_capacity * lanes),
                lane_depth: vec![0; lanes],
                stats: QueueStats::default(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            lane_capacity,
            policy,
        }
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Number of producer lanes.
    pub fn lanes(&self) -> usize {
        crate::sync::lock(&self.inner).lane_depth.len() // lock: stream.queue
    }

    /// Enqueues one item on lane 0 — the single-producer entry point.
    pub fn push(&self, item: T) -> PushOutcome {
        self.push_lane(0, item)
    }

    /// Enqueues one item on `lane`, reporting exactly what happened as
    /// a [`PushOutcome`]. Under [`OverflowPolicy::Block`] a lane at its
    /// quota makes this call wait for a consumer to drain *this lane's*
    /// items — other lanes' fullness never blocks it; if the queue
    /// closes during that wait the item is rejected as
    /// [`PushOutcome::Closed`] and counted in
    /// [`QueueStats::rejected_closed`].
    pub fn push_lane(&self, lane: usize, item: T) -> PushOutcome {
        let mut g = crate::sync::lock(&self.inner); // lock: stream.queue
        loop {
            if g.closed {
                g.stats.rejected_closed += 1;
                return PushOutcome::Closed;
            }
            if g.lane_depth[lane] < self.lane_capacity {
                break;
            }
            match self.policy {
                OverflowPolicy::Block => {
                    g = crate::sync::wait(&self.not_full, g);
                }
                OverflowPolicy::DropNewest => {
                    g.stats.dropped += 1;
                    return PushOutcome::Shed;
                }
            }
        }
        g.items.push_back((lane, item));
        g.lane_depth[lane] += 1;
        g.stats.pushed += 1;
        let depth = g.items.len();
        if depth > g.stats.high_water_mark {
            g.stats.high_water_mark = depth;
        }
        drop(g);
        self.not_empty.notify_one();
        PushOutcome::Accepted
    }

    /// Dequeues the next item, waiting while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — the consumer's
    /// shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut g = crate::sync::lock(&self.inner); // lock: stream.queue
        loop {
            if let Some((lane, item)) = g.items.pop_front() {
                g.lane_depth[lane] -= 1;
                g.stats.popped += 1;
                drop(g);
                // Waiters are lane-specific and the condvar is shared,
                // so wake them all: the ones whose lane is still full
                // re-check and park again.
                self.not_full.notify_all();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = crate::sync::wait(&self.not_empty, g);
        }
    }

    /// Closes the queue: further pushes are rejected, and consumers
    /// drain what remains before seeing `None`.
    pub fn close(&self) {
        let mut g = crate::sync::lock(&self.inner); // lock: stream.queue
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        crate::sync::lock(&self.inner).items.len() // lock: stream.queue
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> QueueStats {
        crate::sync::lock(&self.inner).stats // lock: stream.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_counters() {
        let q = BoundedQueue::new(8, OverflowPolicy::Block);
        for i in 0..5 {
            assert!(q.push(i).is_accepted());
        }
        let drained: Vec<i32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(drained, [0, 1, 2, 3, 4]);
        let s = q.stats();
        assert_eq!(s.pushed, 5);
        assert_eq!(s.popped, 5);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.rejected_closed, 0);
        assert_eq!(s.high_water_mark, 5);
        assert_eq!(s.attempts(), 5);
    }

    #[test]
    fn drop_newest_sheds_when_full() {
        let q = BoundedQueue::new(2, OverflowPolicy::DropNewest);
        assert!(q.push(1).is_accepted());
        assert!(q.push(2).is_accepted());
        assert_eq!(q.push(3), PushOutcome::Shed, "third item is shed");
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(4).is_accepted(), "room again after a pop");
        assert_eq!(q.stats().high_water_mark, 2);
        assert_eq!(q.stats().attempts(), 4);
    }

    #[test]
    fn close_rejects_pushes_and_drains_consumers() {
        let q = BoundedQueue::new(4, OverflowPolicy::Block);
        assert!(q.push(1).is_accepted());
        q.close();
        assert_eq!(
            q.push(2),
            PushOutcome::Closed,
            "closed queue rejects pushes"
        );
        assert_eq!(q.stats().rejected_closed, 1, "rejection is counted");
        assert_eq!(q.pop(), Some(1), "items in flight still drain");
        assert_eq!(q.pop(), None, "then consumers see end of stream");
        assert_eq!(q.stats().attempts(), 2);
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        assert!(q.push(10).is_accepted());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(20))
        };
        // The producer is stuck until we pop; popping twice proves the
        // blocked item eventually lands.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        assert!(producer.join().unwrap().is_accepted());
        assert_eq!(q.stats().pushed, 2);
    }

    /// Regression test for the shutdown accounting gap: a `Block`-policy
    /// push that was waiting for room when `close()` arrived used to
    /// return `false` without incrementing any counter, so the item
    /// vanished from `QueueStats` entirely. It must surface as
    /// `rejected_closed`, keeping `pushed + dropped + rejected_closed`
    /// equal to the number of attempts.
    #[test]
    fn close_during_blocked_push_is_counted() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        assert!(q.push(1).is_accepted());
        let blocked: Vec<_> = (0..3)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.push(10 + i))
            })
            .collect();
        // Give the producers time to park inside `push` (the outcome is
        // `Closed` either way — parked or not-yet-started — so this
        // only steers the test toward the interesting interleaving).
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let outcomes: Vec<PushOutcome> = blocked.into_iter().map(|t| t.join().unwrap()).collect();
        assert!(
            outcomes.iter().all(|o| *o == PushOutcome::Closed),
            "mid-wait close rejects the parked producers: {outcomes:?}"
        );
        let s = q.stats();
        assert_eq!(s.pushed, 1);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.rejected_closed, 3, "each parked producer is counted");
        assert_eq!(s.attempts(), 4, "no push outcome is invisible");
    }

    /// The per-lane backpressure contract: lane 0 at its quota blocks
    /// only lane 0's producer; lane 1 keeps pushing through the same
    /// queue the whole time.
    #[test]
    fn full_lane_blocks_only_its_own_producer() {
        let q = Arc::new(BoundedQueue::with_lanes(1, 2, OverflowPolicy::Block));
        assert!(q.push_lane(0, 100).is_accepted());
        let blocked = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_lane(0, 101))
        };
        // Give the lane-0 producer time to park on its full lane.
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Lane 1 is unaffected: its quota is its own.
        assert!(q.push_lane(1, 200).is_accepted());
        assert_eq!(q.len(), 2, "lane 1 pushed past lane 0's stall");
        // Draining releases lane 0; FIFO order is global across lanes.
        assert_eq!(q.pop(), Some(100));
        assert!(blocked.join().unwrap().is_accepted());
        let mut rest = [q.pop().unwrap(), q.pop().unwrap()];
        rest.sort_unstable();
        assert_eq!(rest, [101, 200]);
        assert_eq!(q.stats().pushed, 3);
    }

    #[test]
    fn drop_newest_sheds_per_lane() {
        let q = BoundedQueue::with_lanes(1, 2, OverflowPolicy::DropNewest);
        assert!(q.push_lane(0, 1).is_accepted());
        assert_eq!(q.push_lane(0, 2), PushOutcome::Shed, "lane 0 at quota");
        assert!(q.push_lane(1, 3).is_accepted(), "lane 1 has its own quota");
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().attempts(), 3);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(BoundedQueue::new(4, OverflowPolicy::Block));
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        assert!(q.push(t * 100 + i).is_accepted());
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..200 {
            got.push(q.pop().unwrap());
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|t| (0..50).map(move |i| t * 100 + i))
            .collect();
        assert_eq!(got, expected);
        assert!(q.stats().high_water_mark <= 4);
    }
}
