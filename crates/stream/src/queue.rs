//! A bounded multi-producer queue with backpressure accounting.
//!
//! The queue sits between the stream collector (producer) and the
//! ingest workers (consumers). Bounding it is the backpressure
//! mechanism: when ingest falls behind, the producer either blocks
//! ([`OverflowPolicy::Block`] — lossless, the transport's own flow
//! control pushes back) or sheds the newest item
//! ([`OverflowPolicy::DropNewest`] — lossy but non-blocking, with every
//! drop counted). [`QueueStats`] exposes the pushed/popped/dropped
//! counters and the high-water mark, the "how close to the cliff did we
//! get" signal an operator watches.
//!
//! Built on [`std::sync::Mutex`] + [`std::sync::Condvar`]; the vendored
//! `parking_lot` stand-in has no condvar, and none of this is on a
//! per-record hot path (items are batches).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What `push` does when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Wait until a consumer makes room (lossless backpressure).
    Block,
    /// Reject the incoming item, counting it dropped (lossy shedding).
    DropNewest,
}

/// Counter snapshot of a queue's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub pushed: u64,
    /// Items handed to consumers.
    pub popped: u64,
    /// Items rejected because the queue was full (DropNewest only).
    pub dropped: u64,
    /// Maximum queue depth ever reached.
    pub high_water_mark: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    stats: QueueStats,
    closed: bool,
}

/// A bounded FIFO queue shared between producer and consumer threads.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        assert!(capacity > 0, "a zero-capacity queue cannot move items");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                stats: QueueStats::default(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            policy,
        }
    }

    /// The configured overflow policy.
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }

    /// Enqueues one item. Returns `true` if it was accepted; `false` if
    /// it was shed (`DropNewest` on a full queue) or the queue is
    /// closed. Under [`OverflowPolicy::Block`] a full queue makes this
    /// call wait for a consumer.
    pub fn push(&self, item: T) -> bool {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        loop {
            if g.closed {
                return false;
            }
            if g.items.len() < self.capacity {
                break;
            }
            match self.policy {
                OverflowPolicy::Block => {
                    g = self.not_full.wait(g).expect("queue lock poisoned");
                }
                OverflowPolicy::DropNewest => {
                    g.stats.dropped += 1;
                    return false;
                }
            }
        }
        g.items.push_back(item);
        g.stats.pushed += 1;
        let depth = g.items.len();
        if depth > g.stats.high_water_mark {
            g.stats.high_water_mark = depth;
        }
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the next item, waiting while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained — the consumer's
    /// shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = g.items.pop_front() {
                g.stats.popped += 1;
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: further pushes are rejected, and consumers
    /// drain what remains before seeing `None`.
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.inner.lock().expect("queue lock poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_counters() {
        let q = BoundedQueue::new(8, OverflowPolicy::Block);
        for i in 0..5 {
            assert!(q.push(i));
        }
        let drained: Vec<i32> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(drained, [0, 1, 2, 3, 4]);
        let s = q.stats();
        assert_eq!(s.pushed, 5);
        assert_eq!(s.popped, 5);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.high_water_mark, 5);
    }

    #[test]
    fn drop_newest_sheds_when_full() {
        let q = BoundedQueue::new(2, OverflowPolicy::DropNewest);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3), "third item is shed");
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(4), "room again after a pop");
        assert_eq!(q.stats().high_water_mark, 2);
    }

    #[test]
    fn close_rejects_pushes_and_drains_consumers() {
        let q = BoundedQueue::new(4, OverflowPolicy::Block);
        assert!(q.push(1));
        q.close();
        assert!(!q.push(2), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1), "items in flight still drain");
        assert_eq!(q.pop(), None, "then consumers see end of stream");
    }

    #[test]
    fn blocking_push_waits_for_consumer() {
        let q = Arc::new(BoundedQueue::new(1, OverflowPolicy::Block));
        assert!(q.push(10));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(20))
        };
        // The producer is stuck until we pop; popping twice proves the
        // blocked item eventually lands.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        assert!(producer.join().unwrap());
        assert_eq!(q.stats().pushed, 2);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(BoundedQueue::new(4, OverflowPolicy::Block));
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        assert!(q.push(t * 100 + i));
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..200 {
            got.push(q.pop().unwrap());
        }
        for p in producers {
            p.join().unwrap();
        }
        got.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|t| (0..50).map(move |i| t * 100 + i))
            .collect();
        assert_eq!(got, expected);
        assert!(q.stats().high_water_mark <= 4);
    }
}
