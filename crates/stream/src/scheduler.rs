//! The window scheduler: per-window pipeline runs and the incremental
//! multi-day combination.
//!
//! When a window closes, the scheduler runs
//! [`PipelineEngine::run_sharded`] over the window's accumulated stats
//! against that day's RIB, and folds the window into the running
//! multi-day state exactly the way `mt_core::combine` defines it:
//! traffic stats merge shard-wise (counters add, host sets union) and
//! the RIB is the *union* of every day's snapshot in the span (a prefix
//! routed on any day of the window counts as routed — step 5 must only
//! reject never-routed space). Both are maintained incrementally, so
//! after each window close the combined K-of-N result is refreshed with
//! one `run_sharded` instead of re-merging the whole history.
//!
//! RIB snapshots come from a caller-supplied provider closure — the
//! scheduler does not depend on `mt-netmodel`; in production the
//! provider would read the day's BGP table dump.

use mt_core::pipeline::{PipelineConfig, PipelineResult};
use mt_core::PipelineEngine;
use mt_flow::ShardedTrafficStats;
use mt_types::{Asn, Day, PrefixTrie};

/// Pipeline parameters shared by every window run.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// The exporters' packet sampling rate (volume scaling).
    pub sampling_rate: u32,
    /// Pipeline thresholds.
    pub pipeline: PipelineConfig,
    /// Worker threads for each `run_sharded` call.
    pub threads: usize,
}

/// One closed window's pipeline output.
#[derive(Debug)]
pub struct WindowReport {
    /// The window's day.
    pub day: Day,
    /// Records ingested into the window.
    pub records: u64,
    /// The single-day pipeline result.
    pub result: PipelineResult,
}

/// The multi-day combined output after a window close.
#[derive(Debug)]
pub struct CombinedReport {
    /// First day of the combined span.
    pub first: Day,
    /// Calendar length of the span in days (gap days included — the
    /// volume cap scales with elapsed time, not with data density).
    pub days: u32,
    /// The combined pipeline result.
    pub result: PipelineResult,
}

/// Everything a window sink sees when one day window closes: the
/// window's own stats, ports, and pipeline result, plus the refreshed
/// multi-day combination. Borrowed — persist what you need and return.
#[derive(Debug)]
pub struct ClosedWindow<'a> {
    /// The window's day.
    pub day: Day,
    /// Records ingested into the window.
    pub records: u64,
    /// The window's accumulated traffic stats.
    pub stats: &'a ShardedTrafficStats,
    /// The window's destination-port histogram, sorted by port.
    pub ports: &'a [(u16, u64)],
    /// The single-day pipeline result.
    pub window: &'a PipelineResult,
    /// The refreshed multi-day combined result.
    pub combined: &'a PipelineResult,
    /// First day of the combined span.
    pub first_day: Day,
    /// Calendar length of the combined span in days.
    pub span_days: u32,
}

/// Observer invoked after every window close — how the results store
/// persists windows without the scheduler depending on mt-store.
pub type WindowSink = Box<dyn FnMut(ClosedWindow<'_>) + Send>;

/// Runs the pipeline per closed window and maintains the incremental
/// multi-day combination.
pub struct WindowScheduler<F> {
    rib_of: F,
    engine: PipelineEngine,
    cfg: SchedulerConfig,
    cumulative: Option<ShardedTrafficStats>,
    union_rib: PrefixTrie<Asn>,
    first_day: Option<Day>,
    last_day: Option<Day>,
    /// Next day whose RIB snapshot must be folded into the union.
    next_rib_day: Day,
    sink: Option<WindowSink>,
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> WindowScheduler<F> {
    /// Creates a scheduler over a per-day RIB provider.
    pub fn new(rib_of: F, cfg: SchedulerConfig) -> Self {
        assert!(cfg.threads >= 1);
        WindowScheduler {
            rib_of,
            engine: PipelineEngine::standard(),
            cfg,
            cumulative: None,
            union_rib: PrefixTrie::new(),
            first_day: None,
            last_day: None,
            next_rib_day: Day(0),
            sink: None,
        }
    }

    /// Installs an observer invoked after every window close with the
    /// window's stats, ports, and both pipeline results.
    pub fn set_sink(&mut self, sink: WindowSink) {
        self.sink = Some(sink);
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Attaches a metrics registry to the scheduler's pipeline engine:
    /// every window-close and combined run publishes `mt_pipeline_*`
    /// funnel counters and timing histograms into it.
    pub fn with_registry(mut self, registry: &mt_obs::MetricsRegistry) -> Self {
        self.engine = PipelineEngine::standard().with_registry(registry);
        self
    }

    /// Closes the window of `day` with its accumulated stats, returning
    /// the per-window report and the refreshed combined report.
    ///
    /// Windows must close in ascending day order (the watermark
    /// guarantees this upstream).
    pub fn close(
        &mut self,
        day: Day,
        records: u64,
        stats: ShardedTrafficStats,
    ) -> (WindowReport, CombinedReport) {
        self.close_with_ports(day, records, stats, &[])
    }

    /// [`close`](Self::close), with the window's destination-port
    /// histogram for the sink (the scheduler itself never reads it).
    pub fn close_with_ports(
        &mut self,
        day: Day,
        records: u64,
        stats: ShardedTrafficStats,
        ports: &[(u16, u64)],
    ) -> (WindowReport, CombinedReport) {
        if let Some(last) = self.last_day {
            assert!(day > last, "windows must close in ascending day order");
        }
        self.last_day = Some(day);
        let day_rib = (self.rib_of)(day);
        let window_result = self.engine.run_sharded(
            &stats,
            &day_rib,
            self.cfg.sampling_rate,
            1,
            &self.cfg.pipeline,
            self.cfg.threads,
        );

        // Fold the window into the running combination. The union RIB
        // covers every calendar day of the span, including days that
        // produced no window (their space may still have been routed).
        let first = match self.first_day {
            Some(f) => f,
            None => {
                self.first_day = Some(day);
                self.next_rib_day = day;
                day
            }
        };
        while self.next_rib_day <= day {
            if self.next_rib_day == day {
                for (prefix, &asn) in day_rib.iter() {
                    self.union_rib.insert(prefix, asn);
                }
            } else {
                for (prefix, &asn) in (self.rib_of)(self.next_rib_day).iter() {
                    self.union_rib.insert(prefix, asn);
                }
            }
            self.next_rib_day = self.next_rib_day.next();
        }
        // The first window's stats *become* the cumulative state; later
        // windows keep theirs alive past the merge so the sink can
        // still see the window in isolation.
        let mut window_stats: Option<ShardedTrafficStats> = None;
        let cumulative = match self.cumulative.take() {
            None => self.cumulative.insert(stats),
            Some(mut c) => {
                c.merge(&stats);
                window_stats = Some(stats);
                self.cumulative.insert(c)
            }
        };
        let span_days = day.0 - first.0 + 1;
        let combined_result = self.engine.run_sharded(
            cumulative,
            &self.union_rib,
            self.cfg.sampling_rate,
            span_days,
            &self.cfg.pipeline,
            self.cfg.threads,
        );

        if let Some(sink) = &mut self.sink {
            sink(ClosedWindow {
                day,
                records,
                stats: window_stats.as_ref().unwrap_or(cumulative),
                ports,
                window: &window_result,
                combined: &combined_result,
                first_day: first,
                span_days,
            });
        }

        (
            WindowReport {
                day,
                records,
                result: window_result,
            },
            CombinedReport {
                first,
                days: span_days,
                result: combined_result,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::FlowRecord;
    use mt_types::{Ipv4, Prefix};

    fn flow(day: Day, dst: u32, packets: u64) -> FlowRecord {
        FlowRecord {
            start: day.start() + mt_types::SimDuration::secs(10),
            src: Ipv4::new(9, 9, 9, 9),
            dst: Ipv4(dst),
            src_port: 40_000,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * 40,
        }
    }

    fn rib(prefixes: &[&str]) -> PrefixTrie<Asn> {
        prefixes
            .iter()
            .map(|p| (p.parse::<Prefix>().unwrap(), Asn(65_000)))
            .collect()
    }

    fn cfg() -> SchedulerConfig {
        SchedulerConfig {
            sampling_rate: 1,
            pipeline: PipelineConfig::default(),
            threads: 2,
        }
    }

    fn day_stats(records: &[FlowRecord]) -> ShardedTrafficStats {
        ShardedTrafficStats::from_records(8, records)
    }

    #[test]
    fn per_window_results_use_the_days_rib() {
        // 20/8 routed only on day 0, 21/8 only on day 1.
        let mut s = WindowScheduler::new(
            |d| {
                if d == Day(0) {
                    rib(&["20.0.0.0/8"])
                } else {
                    rib(&["21.0.0.0/8"])
                }
            },
            cfg(),
        );
        let (w0, _) = s.close(Day(0), 1, day_stats(&[flow(Day(0), 0x1401_0101, 5)]));
        assert_eq!(w0.result.dark.len(), 1, "20/8 routed on its day");
        let (w1, c1) = s.close(Day(1), 1, day_stats(&[flow(Day(1), 0x1501_0101, 5)]));
        assert_eq!(w1.result.dark.len(), 1, "21/8 routed on its day");
        // Combined: union RIB covers both, both blocks dark over 2 days.
        assert_eq!(c1.days, 2);
        assert_eq!(c1.result.dark.len(), 2);
    }

    #[test]
    fn combined_matches_batch_recombination() {
        let ribs = |_d: Day| rib(&["20.0.0.0/8"]);
        let mut s = WindowScheduler::new(ribs, cfg());
        let day0: Vec<FlowRecord> = (0..30)
            .map(|i| flow(Day(0), 0x1400_0100 + i * 256, 2))
            .collect();
        let day2: Vec<FlowRecord> = (0..30)
            .map(|i| flow(Day(2), 0x1400_4100 + i * 256, 3))
            .collect();
        s.close(Day(0), day0.len() as u64, day_stats(&day0));
        // Day 1 has no window (a gap); the span still counts it.
        let (_, combined) = s.close(Day(2), day2.len() as u64, day_stats(&day2));
        assert_eq!(combined.days, 3, "calendar span includes the gap day");

        let mut all = day0.clone();
        all.extend(day2.iter().cloned());
        let batch_stats = ShardedTrafficStats::from_records(8, &all);
        let batch = PipelineEngine::standard().run_sharded(
            &batch_stats,
            &rib(&["20.0.0.0/8"]),
            1,
            3,
            &PipelineConfig::default(),
            2,
        );
        assert_eq!(combined.result.dark, batch.dark);
        assert_eq!(combined.result.unclean, batch.unclean);
        assert_eq!(combined.result.gray, batch.gray);
        assert_eq!(combined.result.funnel, batch.funnel);
    }

    #[test]
    #[should_panic(expected = "ascending day order")]
    fn out_of_order_close_is_rejected() {
        let mut s = WindowScheduler::new(|_| rib(&["20.0.0.0/8"]), cfg());
        s.close(Day(3), 1, day_stats(&[flow(Day(3), 0x1401_0101, 5)]));
        s.close(Day(1), 1, day_stats(&[flow(Day(1), 0x1401_0101, 5)]));
    }
}
