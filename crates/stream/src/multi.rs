//! The multi-producer streaming service: N event-loop *lanes* feeding
//! one worker pool, with the single-producer discipline of
//! [`StreamService`](crate::service::StreamService) replaced by an
//! explicitly ordered multi-lane one.
//!
//! # Why a second service
//!
//! [`StreamService`](crate::service::StreamService) documents (and its
//! callers rely on) one producer owning framing, the window gate, and
//! window-close scheduling. A sharded daemon has N epoll loops, each a
//! producer in its own right, so the ordering argument has to be
//! rebuilt around shared state instead of thread ownership. This module
//! is that rebuild; the single-producer service stays untouched as the
//! in-process reference path the equivalence tests compare against.
//!
//! # Threading model
//!
//! Each lane ([`LaneProducer`]) owns what never needs cross-lane order:
//! its collector sessions (a peer's bytes arrive on one lane at a time
//! — kernel-hashed UDP, connection-pinned TCP), its decode scratch, and
//! its [`BatchPool`]. Everything whose order matters is shared behind
//! three locks with a fixed acquisition order (**closer → gate →
//! progress**; each may also be taken alone):
//!
//! - the **gate** ([`Mutex`]): the [`WindowTracker`] (one global
//!   watermark, exactly the single-producer semantics), per-exporter
//!   gate counters, per-day destination-port ledgers, and the shed /
//!   rejected compensation counters;
//! - **progress** ([`Mutex`] + [`Condvar`]): per-day pushed/processed
//!   record counts for the close barrier, plus run totals;
//! - the **closer** ([`Mutex`]): the [`WindowScheduler`] and the
//!   accumulated reports — serializing closes keeps days ascending no
//!   matter which lane's watermark advance triggered them.
//!
//! # Why no accepted record can be lost or double-counted
//!
//! A day's `pushed` count is incremented *at gate time, under the gate
//! lock* — before the batch is enqueued. `take_closable` runs under the
//! same lock, and once it removes a day every later `observe` for that
//! day returns `TooLate` (the watermark only advances), so the count
//! taken at close is final: the barrier (`processed == pushed`, with
//! both cells under the progress lock) provably waits for every batch
//! that was gated before the close decision, including ones a lane had
//! gated but not yet enqueued. The one wrinkle is a push the queue
//! sheds (`DropNewest`) or rejects (closed): those records were already
//! counted, so the lane *compensates* — subtracting the batch's ports
//! under the gate lock first, then its count under the progress lock,
//! then waking the barrier. The order matters: the barrier cannot pass
//! before the pushed-count decrement (the shed batch was never
//! processed), so a closer that passes it always sees the ports ledger
//! already compensated.
//!
//! The result is the keystone property at any lane count: the merged
//! window stats equal a batch ingest of exactly the gated record set,
//! bit for bit — `tests/serve_equivalence.rs` pins this through real
//! sockets at loops ∈ {1, 2, 4}.

use crate::batch::BatchPool;
use crate::collector::StreamCollector;
use crate::queue::{BoundedQueue, PushOutcome};
use crate::scheduler::{
    CombinedReport, SchedulerConfig, WindowReport, WindowScheduler, WindowSink,
};
use crate::service::{
    republish_health, ExporterCounters, HealthSnapshot, StreamConfig, StreamOutput,
};
use crate::window::{Gate, WindowTracker};
use mt_flow::{FlowRecord, ShardedTrafficStats, StatsLayout};
use mt_obs::{Counter, MetricsRegistry};
use mt_types::{Asn, Day, FxHashMap, PrefixTrie};
use mt_wire::ipfix::IpfixFlow;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One unit of ingest work, tagged with the producer lane whose
/// [`BatchPool`] the record buffer returns to after folding.
struct LaneBatch {
    lane: usize,
    day: Day,
    records: Vec<FlowRecord>,
}

/// Per-exporter window-gate counters, kept under the gate lock so the
/// health identities (`decoded == on_time + late + dropped_late`, the
/// per-exporter sums) are exact even mid-stream: every quantity they
/// relate is updated under — and snapshotted under — one lock.
#[derive(Debug, Clone, Copy, Default)]
struct GateExporter {
    flows: u64,
    late: u64,
    dropped: u64,
}

/// Order-sensitive gate state shared by every lane.
struct GateState {
    tracker: WindowTracker,
    /// Destination-port packet histogram per open window; counts
    /// exactly the records `progress.per_day[day].pushed` counts.
    window_ports: FxHashMap<Day, FxHashMap<u16, u64>>,
    /// Per-exporter gate counters, keyed by session name.
    exporters: BTreeMap<String, GateExporter>,
    /// Records shed by queue backpressure (`DropNewest` only).
    dropped_backpressure: u64,
    /// Records lost to a queue closed mid-push (shutdown races).
    rejected_closed: u64,
}

/// One day's epoch-barrier cells.
#[derive(Debug, Clone, Copy, Default)]
struct DayProgress {
    /// Records gated into this day (counted before enqueue; shed and
    /// rejected pushes are compensated back out).
    pushed: u64,
    /// Records folded into worker accumulators for this day.
    processed: u64,
}

/// The close barrier's state: per-day and total pushed/processed.
#[derive(Default)]
struct ProgressState {
    per_day: FxHashMap<Day, DayProgress>,
    total_pushed: u64,
    total_processed: u64,
}

/// State shared between the lanes and the ingest workers.
struct LaneShared {
    queue: BoundedQueue<LaneBatch>,
    /// Per-lane buffer pools: each lane takes from its own, and workers
    /// return each buffer to the pool of the lane that filled it.
    pools: Vec<BatchPool>,
    /// Per-worker per-day accumulators, indexed by worker.
    workers: Vec<Mutex<FxHashMap<Day, ShardedTrafficStats>>>,
    /// Per-worker `mt_ingest_records_total` counters.
    ingest_counters: Vec<Counter>,
    gate: Mutex<GateState>,
    progress: Mutex<ProgressState>,
    /// Signals progress advances (and compensating decrements) to the
    /// close barrier.
    drained: Condvar,
    num_shards: usize,
    size_threshold: u16,
    layout: StatsLayout,
}

impl LaneShared {
    /// An empty window accumulator with the configured shape.
    fn empty_stats(&self) -> ShardedTrafficStats {
        ShardedTrafficStats::with_layout(self.num_shards, self.size_threshold, self.layout.clone())
    }
}

/// Close-path state: the scheduler plus the run's accumulated reports,
/// behind the closer lock so windows close strictly ascending.
struct CloserState<F> {
    scheduler: WindowScheduler<F>,
    windows: Vec<WindowReport>,
    combined: Vec<CombinedReport>,
}

/// The coordinator handle of a multi-lane streaming run: health
/// snapshots mid-run, [`finish`](Self::finish) at the end. Lanes are
/// handed out once at [`start`](Self::start) and returned at finish.
pub struct MultiStreamService<F> {
    cfg: StreamConfig,
    shared: Arc<LaneShared>,
    closer: Arc<Mutex<CloserState<F>>>,
    /// Per-lane collectors; each lane locks its own per chunk, health
    /// locks each briefly to aggregate session counters.
    collectors: Vec<Arc<Mutex<StreamCollector>>>,
    handles: Vec<JoinHandle<()>>,
    registry: Arc<MetricsRegistry>,
    windows_closed_counter: Counter,
}

/// One event loop's producer handle: decodes its peers' bytes, gates
/// the records, and feeds the shared worker pool through its own queue
/// lane. `Send` (it owns no thread affinity) but not `Sync` — exactly
/// one loop drives it.
pub struct LaneProducer<F> {
    lane: usize,
    collector: Arc<Mutex<StreamCollector>>,
    shared: Arc<LaneShared>,
    closer: Arc<Mutex<CloserState<F>>>,
    registry: Arc<MetricsRegistry>,
    windows_closed_counter: Counter,
    /// Reusable decode buffer: one allocation serves every chunk.
    decode_buf: Vec<IpfixFlow>,
    /// Reusable per-batch port-histogram scratch.
    port_scratch: FxHashMap<u16, u64>,
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> MultiStreamService<F> {
    /// Starts the service with `lanes` producer lanes: spawns the
    /// ingest workers and returns the coordinator handle plus one
    /// [`LaneProducer`] per lane.
    pub fn start(cfg: StreamConfig, lanes: usize, rib_of: F) -> (Self, Vec<LaneProducer<F>>) {
        Self::start_with_registry(cfg, lanes, rib_of, Arc::new(MetricsRegistry::new()))
    }

    /// Like [`start`](Self::start), but publishing into a
    /// caller-supplied registry.
    pub fn start_with_registry(
        cfg: StreamConfig,
        lanes: usize,
        rib_of: F,
        registry: Arc<MetricsRegistry>,
    ) -> (Self, Vec<LaneProducer<F>>) {
        assert!(cfg.ingest_threads >= 1);
        assert!(lanes >= 1, "a run needs at least one producer lane");
        let ingest_counters = (0..cfg.ingest_threads)
            .map(|i| {
                let worker = i.to_string();
                registry.counter_with(
                    "mt_ingest_records_total",
                    &[("worker", worker.as_str())],
                    "Records folded into window accumulators by this worker.",
                )
            })
            .collect();
        let shared = Arc::new(LaneShared {
            // Each lane gets the configured capacity as its own quota,
            // so one stalled lane never blocks the others.
            queue: BoundedQueue::with_lanes(cfg.queue_capacity, lanes, cfg.overflow),
            // Per lane: its quota's worth of batches may wait, one may
            // be in a worker's hands, one in the lane's.
            pools: (0..lanes)
                .map(|_| BatchPool::new(cfg.queue_capacity + 2))
                .collect(),
            workers: (0..cfg.ingest_threads)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            ingest_counters,
            gate: Mutex::new(GateState {
                tracker: WindowTracker::new(cfg.allowed_lateness),
                window_ports: FxHashMap::default(),
                exporters: BTreeMap::new(),
                dropped_backpressure: 0,
                rejected_closed: 0,
            }),
            progress: Mutex::new(ProgressState::default()),
            drained: Condvar::new(),
            num_shards: cfg.num_shards,
            size_threshold: cfg.size_threshold,
            layout: cfg.layout.clone(),
        });
        let handles = (0..cfg.ingest_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || ingest_worker(&shared, i))
            })
            .collect();
        let scheduler = WindowScheduler::new(
            rib_of,
            SchedulerConfig {
                sampling_rate: cfg.sampling_rate,
                pipeline: cfg.pipeline.clone(),
                threads: cfg.pipeline_threads,
            },
        )
        .with_registry(&registry);
        let closer = Arc::new(Mutex::new(CloserState {
            scheduler,
            windows: Vec::new(),
            combined: Vec::new(),
        }));
        let windows_closed_counter = registry.counter(
            "mt_window_closed_total",
            "Windows closed and run through the pipeline.",
        );
        let collectors: Vec<Arc<Mutex<StreamCollector>>> = (0..lanes)
            .map(|_| Arc::new(Mutex::new(StreamCollector::new())))
            .collect();
        let producers = (0..lanes)
            .map(|lane| LaneProducer {
                lane,
                collector: Arc::clone(&collectors[lane]),
                shared: Arc::clone(&shared),
                closer: Arc::clone(&closer),
                registry: Arc::clone(&registry),
                windows_closed_counter: windows_closed_counter.clone(),
                decode_buf: Vec::new(),
                port_scratch: FxHashMap::default(),
            })
            .collect();
        (
            MultiStreamService {
                cfg,
                shared,
                closer,
                collectors,
                handles,
                registry,
                windows_closed_counter,
            },
            producers,
        )
    }

    /// The run's metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The service configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Number of producer lanes.
    pub fn lanes(&self) -> usize {
        self.collectors.len()
    }

    /// Installs a window sink on the scheduler (see
    /// [`WindowSink`]); callable any time before the first close.
    pub fn set_window_sink(&self, sink: WindowSink) {
        crate::sync::lock(&self.closer).scheduler.set_sink(sink); // lock: stream.closer
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> usize {
        crate::sync::lock(&self.closer).windows.len() // lock: stream.closer
    }

    /// Takes a [`HealthSnapshot`] of the whole stack and republishes
    /// the legacy counters into the registry — callable from any thread
    /// (the daemon's control loop) while the lanes ingest.
    ///
    /// Mid-run exactness: every quantity the gate identity relates
    /// (decoded, on-time, late, dropped, the per-exporter splits) is
    /// read under the one gate lock that writes it, so the identities
    /// hold at any instant, not just at quiescent points. The worker
    /// counters are read *before* the gate so the derived `in_flight`
    /// can never underflow.
    pub fn health(&self) -> HealthSnapshot {
        let ingested: u64 = self.shared.ingest_counters.iter().map(Counter::get).sum();
        let queue = self.shared.queue.stats();
        let queue_depth = self.shared.queue.len() as u64;
        let g = crate::sync::lock(&self.shared.gate); // lock: stream.gate
        let (on_time, late, dropped_late) = (g.tracker.on_time, g.tracker.late, g.tracker.dropped);
        let windows_open = g.tracker.open_days().count() as u64;
        let (dropped_backpressure, rejected_closed) = (g.dropped_backpressure, g.rejected_closed);
        let gate_exporters = g.exporters.clone();
        drop(g);

        // Session counters (bytes, messages, decode errors) come from
        // the per-lane collectors; a peer that reconnected onto a
        // different loop has sessions on several lanes, and they SUM —
        // the exporter's lifetime counters keep accumulating across
        // loops. Flows/late/dropped come from the gate side so the
        // identities stay exact (a decoded-but-not-yet-gated chunk is
        // invisible to both sides of every identity).
        #[derive(Default)]
        struct SessionSums {
            bytes: u64,
            messages: u64,
            decode_errors: u64,
        }
        let mut sessions: BTreeMap<String, SessionSums> = BTreeMap::new();
        for collector in &self.collectors {
            let c = crate::sync::lock(collector); // lock: stream.collector
            for (name, s) in c.sessions() {
                let e = sessions.entry(name.to_owned()).or_default();
                e.bytes += s.bytes;
                e.messages += s.messages;
                e.decode_errors += s.decode_errors();
            }
        }
        let mut names: Vec<&String> = sessions.keys().collect();
        let mut gate_only: Vec<&String> = gate_exporters
            .keys()
            .filter(|n| !sessions.contains_key(*n))
            .collect();
        names.append(&mut gate_only);
        names.sort_unstable();
        let exporters: Vec<ExporterCounters> = names
            .into_iter()
            .map(|name| {
                let s = sessions
                    .get(name)
                    .map_or((0, 0, 0), |s| (s.bytes, s.messages, s.decode_errors));
                let gx = gate_exporters.get(name).copied().unwrap_or_default();
                ExporterCounters {
                    name: name.clone(),
                    bytes: s.0,
                    messages: s.1,
                    flows: gx.flows,
                    decode_errors: s.2,
                    late: gx.late,
                    dropped: gx.dropped,
                }
            })
            .collect();

        let accepted = on_time + late;
        let snapshot = HealthSnapshot {
            decoded: exporters.iter().map(|e| e.flows).sum(),
            on_time,
            late,
            dropped_late,
            dropped_backpressure,
            rejected_closed,
            ingested,
            in_flight: accepted - ingested - dropped_backpressure - rejected_closed,
            queue,
            queue_depth,
            windows_open,
            windows_closed: self.windows_closed_counter.get(),
            exporters,
        };
        republish_health(&self.registry, &snapshot);
        snapshot
    }

    /// Ends the run: takes the lanes back (their loops are done),
    /// flushes in-flight records, closes every remaining open window in
    /// day order, stops the workers, and returns the run's full output.
    pub fn finish(mut self, lanes: Vec<LaneProducer<F>>) -> StreamOutput {
        assert_eq!(
            lanes.len(),
            self.collectors.len(),
            "every lane must be returned before finish"
        );
        drop(lanes); // producers retired; nothing pushes from here on
        {
            let g = crate::sync::lock(&self.shared.progress); // lock: stream.progress
            let _g = crate::sync::wait_while(&self.shared.drained, g, |p| {
                p.total_processed < p.total_pushed
            });
        }
        let (windows, combined) = {
            let mut closer = crate::sync::lock(&self.closer); // lock: stream.closer
                                                              // lock: stream.gate
            let open = crate::sync::lock(&self.shared.gate).tracker.drain_open();
            for day in open {
                close_window(
                    &self.shared,
                    &mut closer,
                    &self.registry,
                    &self.windows_closed_counter,
                    day,
                );
            }
            (
                std::mem::take(&mut closer.windows),
                std::mem::take(&mut closer.combined),
            )
        };
        self.shared.queue.close();
        for h in self.handles.drain(..) {
            // check: allow(no_panic, "join() errs only if the worker panicked; re-raising on the coordinator is intended")
            h.join().expect("ingest worker panicked");
        }
        let health = self.health();
        debug_assert_eq!(health.in_flight, 0, "finish is a quiescent point");
        StreamOutput {
            exporters: health.exporters.clone(),
            queue: health.queue,
            on_time: health.on_time,
            late: health.late,
            dropped_late: health.dropped_late,
            dropped_backpressure: health.dropped_backpressure,
            windows,
            combined,
            health,
            registry: self.registry,
        }
    }
}

impl<F: Fn(Day) -> PrefixTrie<Asn>> LaneProducer<F> {
    /// This producer's lane index (also its metric label).
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Feeds one chunk of `exporter`'s IPFIX byte stream — this lane's
    /// half of the work (framing, decoding) runs without any shared
    /// lock; gating and closing take the shared locks briefly.
    pub fn push_chunk(&mut self, exporter: &str, chunk: &[u8]) {
        let mut decoded = std::mem::take(&mut self.decode_buf);
        decoded.clear();
        // lock: stream.collector
        crate::sync::lock(&self.collector).feed_into(exporter, chunk, &mut decoded);
        self.ingest_decoded(exporter, decoded);
    }

    /// Feeds one UDP datagram from `exporter`; rejected datagrams
    /// (returning `false`) are counted on the exporter's session and
    /// contribute no records.
    pub fn push_datagram(&mut self, exporter: &str, datagram: &[u8]) -> bool {
        let mut decoded = std::mem::take(&mut self.decode_buf);
        decoded.clear();
        let accepted =
            // lock: stream.collector
            crate::sync::lock(&self.collector).feed_datagram_into(exporter, datagram, &mut decoded);
        self.ingest_decoded(exporter, decoded);
        accepted
    }

    /// Gates decoded records, batches them per day onto this lane, and
    /// closes any windows the advancing watermark allows.
    fn ingest_decoded(&mut self, exporter: &str, decoded: Vec<IpfixFlow>) {
        if decoded.is_empty() {
            self.decode_buf = decoded;
            self.maybe_close();
            return;
        }
        // Gate phase, under the gate lock: watermark decisions, the
        // per-exporter counters, the per-day port ledgers, and — via
        // the nested progress lock — the per-day pushed counts. All of
        // it lands before the batch is visible anywhere else, which is
        // what makes the close barrier exact (module docs).
        type DayBatch = (Vec<FlowRecord>, Vec<(u16, u64)>);
        let mut by_day: BTreeMap<Day, DayBatch> = BTreeMap::new();
        {
            let mut g = crate::sync::lock(&self.shared.gate); // lock: stream.gate
            let gs = &mut *g;
            let ex = gs.exporters.entry(exporter.to_owned()).or_default();
            ex.flows += decoded.len() as u64;
            for f in &decoded {
                let r = FlowRecord::from_ipfix(f);
                match gs.tracker.observe(r.start) {
                    Gate::Accept { day, late } => {
                        if late {
                            ex.late += 1;
                        }
                        by_day
                            .entry(day)
                            .or_insert_with(|| (self.shared.pools[self.lane].take(), Vec::new()))
                            .0
                            .push(r);
                    }
                    Gate::TooLate { .. } => ex.dropped += 1,
                }
            }
            for (day, (records, comp)) in &mut by_day {
                // Tally the batch's destination ports into the window
                // ledger now, and keep a copy for compensation: the
                // record buffer moves into the queue, so a shed push
                // could not re-derive what to subtract.
                self.port_scratch.clear();
                for r in records.iter() {
                    *self.port_scratch.entry(r.dst_port).or_default() += r.packets;
                }
                let ports = gs.window_ports.entry(*day).or_default();
                for (&port, &packets) in &self.port_scratch {
                    *ports.entry(port).or_default() += packets;
                }
                comp.extend(self.port_scratch.drain());
            }
            let mut p = crate::sync::lock(&self.shared.progress); // lock: stream.progress
            for (day, (records, _)) in &by_day {
                let n = records.len() as u64;
                p.per_day.entry(*day).or_default().pushed += n;
                p.total_pushed += n;
            }
        }
        self.decode_buf = decoded;
        for (day, (records, comp)) in by_day {
            let n = records.len() as u64;
            let outcome = self.shared.queue.push_lane(
                self.lane,
                LaneBatch {
                    lane: self.lane,
                    day,
                    records,
                },
            );
            match outcome {
                PushOutcome::Accepted => {}
                PushOutcome::Shed => self.compensate(day, n, &comp, false),
                PushOutcome::Closed => self.compensate(day, n, &comp, true),
            }
        }
        self.maybe_close();
    }

    /// Backs a shed or rejected batch out of the gate-time accounting:
    /// ports first (gate lock), then the pushed count (progress lock),
    /// then a barrier wake — in that order, so a closer that passes the
    /// barrier always sees the ports ledger already compensated.
    fn compensate(&self, day: Day, n: u64, comp: &[(u16, u64)], closed: bool) {
        {
            let mut g = crate::sync::lock(&self.shared.gate); // lock: stream.gate
            if closed {
                g.rejected_closed += n;
            } else {
                g.dropped_backpressure += n;
            }
            if let Some(ports) = g.window_ports.get_mut(&day) {
                for &(port, packets) in comp {
                    if let Some(v) = ports.get_mut(&port) {
                        *v = v.saturating_sub(packets);
                        if *v == 0 {
                            ports.remove(&port);
                        }
                    }
                }
            }
        }
        let mut p = crate::sync::lock(&self.shared.progress); // lock: stream.progress
        if let Some(dp) = p.per_day.get_mut(&day) {
            dp.pushed = dp.pushed.saturating_sub(n);
        }
        p.total_pushed = p.total_pushed.saturating_sub(n);
        drop(p);
        self.shared.drained.notify_all();
    }

    /// Closes every window the current watermark allows. The cheap
    /// peek avoids taking the closer lock on the hot path; the
    /// take-under-closer re-check makes racing lanes harmless (the
    /// loser finds nothing left to take).
    fn maybe_close(&mut self) {
        let closable = {
            let g = crate::sync::lock(&self.shared.gate); // lock: stream.gate
            let first_open = g.tracker.open_days().next();
            first_open.is_some_and(|d| g.tracker.is_closed(d))
        };
        if !closable {
            return;
        }
        let mut closer = crate::sync::lock(&self.closer); // lock: stream.closer
                                                          // lock: stream.gate
        let days = crate::sync::lock(&self.shared.gate).tracker.take_closable();
        for day in days {
            close_window(
                &self.shared,
                &mut closer,
                &self.registry,
                &self.windows_closed_counter,
                day,
            );
        }
    }
}

/// Closes one window: waits out the per-day barrier, merges the
/// per-worker accumulators in worker-index order, and hands the window
/// to the scheduler. Callers hold the closer lock (so closes stay
/// serialized and ascending) and must have taken `day` from the
/// tracker already.
fn close_window<F: Fn(Day) -> PrefixTrie<Asn>>(
    shared: &LaneShared,
    closer: &mut CloserState<F>,
    registry: &MetricsRegistry,
    windows_closed: &Counter,
    day: Day,
) {
    // Per-day barrier: every record gated into `day` is in some
    // worker's accumulator. `pushed` is final (the tracker already
    // rejects the day), and compensating decrements wake this wait.
    let records = {
        let g = crate::sync::lock(&shared.progress); // lock: stream.progress
        let mut g = crate::sync::wait_while(&shared.drained, g, |p| {
            p.per_day
                .get(&day)
                .is_some_and(|dp| dp.processed < dp.pushed)
        });
        g.per_day.remove(&day).map_or(0, |dp| dp.pushed)
    };
    let mut merged: Option<ShardedTrafficStats> = None;
    for w in &shared.workers {
        let part = crate::sync::lock(w).remove(&day); // lock: stream.workers
        if let Some(part) = part {
            match &mut merged {
                None => merged = Some(part),
                Some(m) => m.merge(&part),
            }
        }
    }
    let stats = merged.unwrap_or_else(|| shared.empty_stats());
    for (i, load) in stats.shard_loads().into_iter().enumerate() {
        let shard = i.to_string();
        registry
            .gauge_with(
                "mt_flow_shard_blocks",
                &[("shard", shard.as_str())],
                "Destination /24s held by this shard at the last window close.",
            )
            .set(load as u64);
    }
    let mut ports: Vec<(u16, u64)> = crate::sync::lock(&shared.gate) // lock: stream.gate
        .window_ports
        .remove(&day)
        .map(|m| m.into_iter().collect())
        .unwrap_or_default();
    ports.sort_unstable();
    let (window, combined) = closer
        .scheduler
        .close_with_ports(day, records, stats, &ports);
    closer.windows.push(window);
    closer.combined.push(combined);
    windows_closed.inc();
}

/// Ingest worker loop: pop batches, fold records into this worker's
/// per-day accumulator, return the buffer to the owning lane's pool,
/// and report per-day progress for the close barrier.
fn ingest_worker(shared: &LaneShared, index: usize) {
    while let Some(batch) = shared.queue.pop() {
        let n = batch.records.len() as u64;
        {
            let mut days = crate::sync::lock(&shared.workers[index]); // lock: stream.workers
            let stats = days
                .entry(batch.day)
                .or_insert_with(|| shared.empty_stats());
            for r in &batch.records {
                stats.ingest(r);
            }
        }
        shared.pools[batch.lane].put(batch.records);
        // Counted before the progress update so the close barrier
        // (processed == pushed) also implies the ingest counters are
        // complete — health at quiescent points stays exact.
        shared.ingest_counters[index].add(n);
        let mut p = crate::sync::lock(&shared.progress); // lock: stream.progress
        let dp = p.per_day.entry(batch.day).or_default();
        dp.processed += n;
        p.total_processed += n;
        drop(p);
        shared.drained.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::OverflowPolicy;
    use crate::service::StreamService;
    use mt_types::{Ipv4, Prefix, SimDuration};
    use mt_wire::ipfix;

    fn rib() -> PrefixTrie<Asn> {
        [("20.0.0.0/8".parse::<Prefix>().unwrap(), Asn(65_000))]
            .into_iter()
            .collect()
    }

    fn record(day: Day, offset: u64, dst: u32, packets: u64) -> FlowRecord {
        FlowRecord {
            start: day.start() + SimDuration::secs(offset),
            src: Ipv4::new(9, 9, 9, 9),
            dst: Ipv4(dst),
            src_port: 40_000,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * 40,
        }
    }

    fn day_records(day: Day) -> Vec<FlowRecord> {
        (0..40u32)
            .map(|i| {
                record(
                    day,
                    u64::from(i) * 600,
                    0x1400_0100 + (i % 13) * 256 + day.0 * 7,
                    1 + u64::from(i % 4),
                )
            })
            .collect()
    }

    fn messages(records: &[FlowRecord], seq: &mut u32, per_message: usize) -> Vec<Vec<u8>> {
        let flows: Vec<ipfix::IpfixFlow> = records.iter().map(FlowRecord::to_ipfix).collect();
        ipfix::encode_messages(&flows, 0, 1, seq, per_message)
    }

    /// Splices the template set out of an encoded message, leaving a
    /// data-only message (the shape a long-lived TCP exporter sends
    /// after its initial template exchange).
    fn strip_templates(msg: &[u8]) -> Vec<u8> {
        let set_len = usize::from(u16::from_be_bytes([msg[18], msg[19]]));
        let mut out = Vec::with_capacity(msg.len() - set_len);
        out.extend_from_slice(&msg[..16]);
        out.extend_from_slice(&msg[16 + set_len..]);
        let total = out.len() as u16;
        out[2..4].copy_from_slice(&total.to_be_bytes());
        out
    }

    #[test]
    fn lanes_match_single_producer_bit_for_bit() {
        // The single-producer service is the reference; every lane
        // count must produce byte-identical window results for the
        // same record set.
        let reference = {
            let mut svc = StreamService::start(
                StreamConfig {
                    allowed_lateness: SimDuration::hours(1),
                    ..StreamConfig::default()
                },
                |_| rib(),
            );
            let mut seq = 0;
            for d in 0..3 {
                for m in messages(&day_records(Day(d)), &mut seq, 7) {
                    svc.push_chunk("CE", &m);
                }
            }
            svc.finish()
        };
        for lanes in [1usize, 2, 4] {
            let cfg = StreamConfig {
                ingest_threads: 3,
                allowed_lateness: SimDuration::hours(1),
                ..StreamConfig::default()
            };
            let (svc, mut producers) = MultiStreamService::start(cfg, lanes, |_| rib());
            assert_eq!(svc.lanes(), lanes);
            let mut seq = 0;
            // Whole messages round-robin across lanes, each lane its
            // own exporter session (a peer lands on one lane at a time).
            let mut i = 0usize;
            for d in 0..3 {
                for m in messages(&day_records(Day(d)), &mut seq, 7) {
                    let lane = i % lanes;
                    producers[lane].push_chunk(&format!("CE{lane}"), &m);
                    i += 1;
                }
            }
            assert_eq!(svc.windows_closed(), 2, "days 0 and 1 closed mid-stream");
            let out = svc.finish(producers);
            out.health.check_invariants().expect("final invariants");
            assert_eq!(out.windows.len(), reference.windows.len());
            for (m, r) in out.windows.iter().zip(&reference.windows) {
                assert_eq!(m.day, r.day, "{lanes} lanes");
                assert_eq!(m.records, r.records, "day {} at {lanes} lanes", r.day.0);
                assert_eq!(m.result.dark, r.result.dark);
                assert_eq!(m.result.unclean, r.result.unclean);
                assert_eq!(m.result.gray, r.result.gray);
                assert_eq!(m.result.funnel, r.result.funnel);
            }
            let (mf, rf) = (
                out.combined.last().unwrap(),
                reference.combined.last().unwrap(),
            );
            assert_eq!(mf.days, rf.days);
            assert_eq!(mf.result.dark, rf.result.dark);
            assert_eq!(mf.result.funnel, rf.result.funnel);
        }
    }

    #[test]
    fn concurrent_lanes_match_batch() {
        // Four lanes pushing from four real threads; a generous
        // lateness bound keeps every record acceptable under any
        // interleaving, so the result must equal the reference run.
        let lanes = 4usize;
        let reference = {
            let mut svc = StreamService::start(
                StreamConfig {
                    allowed_lateness: SimDuration::hours(96),
                    ..StreamConfig::default()
                },
                |_| rib(),
            );
            let mut seq = 0;
            for d in 0..4 {
                for m in messages(&day_records(Day(d)), &mut seq, 7) {
                    svc.push_chunk("CE", &m);
                }
            }
            svc.finish()
        };
        let cfg = StreamConfig {
            ingest_threads: 2,
            allowed_lateness: SimDuration::hours(96),
            ..StreamConfig::default()
        };
        let (svc, producers) = MultiStreamService::start(cfg, lanes, |_| rib());
        let producers: Vec<LaneProducer<_>> = std::thread::scope(|s| {
            let handles: Vec<_> = producers
                .into_iter()
                .enumerate()
                .map(|(lane, mut p)| {
                    s.spawn(move || {
                        // Lane `lane` is day `lane`'s exporter.
                        let mut seq = 0;
                        for m in messages(&day_records(Day(lane as u32)), &mut seq, 7) {
                            p.push_chunk(&format!("CE{lane}"), &m);
                        }
                        p
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mid = svc.health();
        mid.check_invariants().expect("mid-run invariants");
        let out = svc.finish(producers);
        out.health.check_invariants().expect("final invariants");
        assert_eq!(out.windows.len(), 4, "all four days closed at finish");
        for (m, r) in out.windows.iter().zip(&reference.windows) {
            assert_eq!(m.day, r.day, "closes are ascending");
            assert_eq!(m.records, r.records, "day {}", r.day.0);
            assert_eq!(m.result.dark, r.result.dark);
            assert_eq!(m.result.funnel, r.result.funnel);
        }
        let (mf, rf) = (
            out.combined.last().unwrap(),
            reference.combined.last().unwrap(),
        );
        assert_eq!(mf.result.dark, rf.result.dark);
        assert_eq!(mf.result.funnel, rf.result.funnel);
    }

    #[test]
    fn reconnect_across_lanes_accumulates_counters_without_template_leak() {
        // The same exporter address disconnects from one event loop and
        // reconnects onto another: its lifetime counters keep
        // accumulating (health sums the per-lane sessions), but IPFIX
        // template state must not leak between the lanes' sessions.
        let cfg = StreamConfig {
            ingest_threads: 2,
            allowed_lateness: SimDuration::hours(48),
            ..StreamConfig::default()
        };
        let (svc, mut p) = MultiStreamService::start(cfg, 2, |_| rib());
        let name = "tcp:198.51.100.7:4739";
        let mut seq = 0;

        // Connection 1 lands on lane 0 and sends day 0 with templates.
        let mut bytes_sent = 0u64;
        for m in messages(&day_records(Day(0)), &mut seq, 50) {
            bytes_sent += m.len() as u64;
            p[0].push_chunk(name, &m);
        }
        let h1 = svc.health();
        h1.check_invariants().expect("after lane 0");
        let e1 = h1.exporters.iter().find(|e| e.name == name).unwrap();
        assert_eq!(e1.flows, 40);
        assert_eq!(e1.decode_errors, 0);

        // The peer reconnects onto lane 1 and resumes with a data-only
        // message (no template re-send). Lane 0's templates must not
        // leak: the records are skipped and counted, never decoded.
        let day1 = messages(&day_records(Day(1)), &mut seq, 50);
        let data_only = strip_templates(&day1[0]);
        bytes_sent += data_only.len() as u64;
        p[1].push_chunk(name, &data_only);
        let h2 = svc.health();
        h2.check_invariants().expect("after template-less data");
        let e2 = h2.exporters.iter().find(|e| e.name == name).unwrap();
        assert_eq!(e2.flows, 40, "no flow decoded without templates");
        assert!(e2.decode_errors > 0, "the skipped data set is counted");

        // A real reconnecting exporter re-sends templates; from there
        // the counters keep accumulating across the two lanes.
        for m in &day1 {
            bytes_sent += m.len() as u64;
            p[1].push_chunk(name, m);
        }
        let out = svc.finish(p);
        out.health.check_invariants().expect("final invariants");
        let e = out.exporters.iter().find(|e| e.name == name).unwrap();
        assert_eq!(e.flows, 80, "both connections' flows accumulate");
        assert_eq!(e.bytes, bytes_sent, "bytes accumulate across lanes");
        assert!(e.decode_errors > 0);
        assert_eq!(out.windows.len(), 2);
        assert_eq!(out.windows[0].records, 40);
        assert_eq!(
            out.windows[1].records, 40,
            "only the templated re-send decoded"
        );
    }

    #[test]
    fn drop_newest_sheds_are_compensated_per_lane() {
        // A tiny per-lane quota under DropNewest: every record is
        // either in the window or counted shed, and the identities
        // still balance — the gate-time counts were compensated.
        let cfg = StreamConfig {
            queue_capacity: 1,
            ingest_threads: 1,
            overflow: OverflowPolicy::DropNewest,
            allowed_lateness: SimDuration::hours(48),
            ..StreamConfig::default()
        };
        let (svc, mut p) = MultiStreamService::start(cfg, 2, |_| rib());
        let mut seq = 0;
        let mut pushed = 0u64;
        // Flood until the queue demonstrably shed: a loaded test host
        // can let the worker keep pace with a fixed-size flood, so the
        // flood adapts instead of assuming a race outcome.
        let mut i = 0u32;
        while i < 200 || (svc.health().dropped_backpressure == 0 && i < 50_000) {
            let r = record(
                Day(0),
                u64::from(i % 86_400),
                0x1400_0100 + (i % 200) * 256,
                1,
            );
            let lane = (i % 2) as usize;
            for m in messages(&[r], &mut seq, 1) {
                p[lane].push_chunk(&format!("A{lane}"), &m);
            }
            pushed += 1;
            i += 1;
        }
        let out = svc.finish(p);
        out.health.check_invariants().expect("final invariants");
        let kept = out.windows[0].records;
        assert_eq!(
            kept + out.dropped_backpressure,
            pushed,
            "every record is either ingested or counted shed"
        );
        // One record per batch here, so the queue's shed count equals
        // the record-level backpressure count the gate compensated.
        assert_eq!(out.queue.dropped, out.dropped_backpressure);
        assert!(out.dropped_backpressure > 0, "the flood actually shed");
    }
}
