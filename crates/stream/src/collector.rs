//! Per-exporter IPFIX stream sessions: framing, decoding, resync, and
//! counters.
//!
//! RFC 7011 §10.4 stream transports carry messages back to back with no
//! extra framing — each message is self-delimiting via the length field
//! in its 16-byte header. A session therefore buffers incoming chunks,
//! peels off complete messages, and hands them to its own template
//! [`Collector`] (templates are per transport session, so interleaved
//! exporters never share one). After garbage — a header whose version or
//! declared length is impossible — the session counts a framing error
//! and scans forward for the next plausible header instead of giving up
//! on the stream.

use mt_wire::ipfix::{self, Collector, IpfixFlow};
use std::collections::BTreeMap;

/// Minimum bytes of a decodable unit: the IPFIX message header.
const HEADER_LEN: usize = 16;

/// One exporter's transport session: a framing buffer, a template
/// collector, and counters.
#[derive(Debug, Default)]
pub struct ExporterSession {
    buffer: Vec<u8>,
    collector: Collector,
    /// Bytes fed into the session.
    pub bytes: u64,
    /// Complete messages decoded.
    pub messages: u64,
    /// Flow records decoded.
    pub flows: u64,
    /// Framing-level failures: headers with a wrong version or an
    /// impossible declared length, each followed by a resync scan.
    pub framing_errors: u64,
    /// Datagrams rejected whole by [`feed_datagram`](Self::feed_datagram)
    /// — truncated messages, trailing garbage, or empty payloads. The
    /// datagram transport has no resync (the next datagram starts clean),
    /// so these are counted and dropped rather than scanned past.
    pub bad_datagrams: u64,
}

impl ExporterSession {
    /// Creates a session with an empty buffer and no templates.
    pub fn new() -> Self {
        Self::default()
    }

    /// The session's template collector (set-level skip counters).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Total decode trouble observed on this session: framing errors
    /// plus sets and records the collector had to skip.
    pub fn decode_errors(&self) -> u64 {
        self.framing_errors
            + self.bad_datagrams
            + self.collector.skipped_sets()
            + self.collector.skipped_records
    }

    /// Bytes currently buffered waiting for the rest of a message.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Feeds one chunk of the byte stream, appending every flow of every
    /// complete message to `out`. Chunks may split messages anywhere;
    /// incomplete tails stay buffered for the next call.
    pub fn feed(&mut self, chunk: &[u8], out: &mut Vec<IpfixFlow>) {
        self.bytes += chunk.len() as u64;
        self.buffer.extend_from_slice(chunk);
        let mut pos = 0usize;
        loop {
            let avail = self.buffer.len() - pos;
            if avail < HEADER_LEN {
                break;
            }
            let b = &self.buffer[pos..];
            let version = u16::from_be_bytes([b[0], b[1]]);
            let declared = u16::from_be_bytes([b[2], b[3]]) as usize;
            if version != ipfix::VERSION || declared < HEADER_LEN {
                self.framing_errors += 1;
                match find_header(&self.buffer[pos + 1..]) {
                    Some(off) => pos += 1 + off,
                    None => {
                        // Nothing plausible; keep the final byte in case
                        // it is the first half of a split version field.
                        pos = self.buffer.len() - 1;
                        break;
                    }
                }
                continue;
            }
            if avail < declared {
                break; // wait for the rest of the message
            }
            let before = out.len();
            // The header was validated above, so only set-level trouble
            // remains and that is counted, not raised.
            if self
                .collector
                .decode_message(&self.buffer[pos..pos + declared], out)
                .is_err()
            {
                self.framing_errors += 1;
            } else {
                self.messages += 1;
                self.flows += (out.len() - before) as u64;
            }
            pos += declared;
        }
        self.buffer.drain(..pos);
    }

    /// Feeds one UDP datagram, which must carry whole IPFIX message(s)
    /// (RFC 7011 §10.3 — datagram transports never split a message).
    ///
    /// Returns `true` if the datagram decoded; a rejected datagram
    /// (truncated message, trailing garbage, empty payload, bad header)
    /// bumps [`bad_datagrams`](Self::bad_datagrams), appends nothing to
    /// `out`, and leaves the session's templates intact — the next
    /// datagram starts at a fresh message boundary, so nothing desyncs.
    /// The stream buffer is untouched: one session may serve a peer that
    /// speaks both transports without the two interfering.
    pub fn feed_datagram(&mut self, datagram: &[u8], out: &mut Vec<IpfixFlow>) -> bool {
        self.bytes += datagram.len() as u64;
        let before = out.len();
        match self.collector.decode_datagram(datagram, out) {
            Ok(msgs) => {
                self.messages += msgs;
                self.flows += (out.len() - before) as u64;
                true
            }
            Err(_) => {
                self.bad_datagrams += 1;
                false
            }
        }
    }
}

/// Index of the next plausible message header start (version bytes
/// `00 0A`) in `buf`, if any.
fn find_header(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == [0x00, 0x0A])
}

/// A set of exporter sessions keyed by exporter name.
///
/// Sessions are held in a [`BTreeMap`] so iteration (and thus every
/// per-exporter report) is deterministically ordered by name.
#[derive(Debug, Default)]
pub struct StreamCollector {
    sessions: BTreeMap<String, ExporterSession>,
}

impl StreamCollector {
    /// Creates a collector with no sessions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one chunk from `exporter`, creating its session on first
    /// contact, and returns the flows decoded from it.
    pub fn feed(&mut self, exporter: &str, chunk: &[u8]) -> Vec<IpfixFlow> {
        let mut out = Vec::new();
        self.feed_into(exporter, chunk, &mut out);
        out
    }

    /// Like [`feed`](Self::feed), but appending decoded flows to a
    /// caller-supplied buffer — a long-running producer reuses one
    /// allocation across chunks instead of building a fresh `Vec` each
    /// time.
    pub fn feed_into(&mut self, exporter: &str, chunk: &[u8], out: &mut Vec<IpfixFlow>) {
        self.sessions
            .entry(exporter.to_owned())
            .or_default()
            .feed(chunk, out);
    }

    /// Feeds one UDP datagram from `exporter` (whole messages only),
    /// creating its session on first contact; appends decoded flows to
    /// `out` and returns whether the datagram was accepted.
    pub fn feed_datagram_into(
        &mut self,
        exporter: &str,
        datagram: &[u8],
        out: &mut Vec<IpfixFlow>,
    ) -> bool {
        self.sessions
            .entry(exporter.to_owned())
            .or_default()
            .feed_datagram(datagram, out)
    }

    /// The session of one exporter, if it has sent anything.
    pub fn session(&self, exporter: &str) -> Option<&ExporterSession> {
        self.sessions.get(exporter)
    }

    /// All sessions, ordered by exporter name.
    pub fn sessions(&self) -> impl Iterator<Item = (&str, &ExporterSession)> {
        self.sessions.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total flows decoded across all sessions.
    pub fn total_flows(&self) -> u64 {
        self.sessions.values().map(|s| s.flows).sum()
    }

    /// Total decode errors across all sessions.
    pub fn total_decode_errors(&self) -> u64 {
        self.sessions.values().map(|s| s.decode_errors()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::Ipv4;

    fn flows(n: u32) -> Vec<IpfixFlow> {
        (0..n)
            .map(|i| IpfixFlow {
                src: Ipv4(0x0900_0000 + i),
                dst: Ipv4(0x1400_0000 + i),
                src_port: 40_000,
                dst_port: 23,
                protocol: 6,
                tcp_flags: 2,
                packets: 1 + u64::from(i),
                octets: 40 * (1 + u64::from(i)),
                start_secs: 100 + i,
            })
            .collect()
    }

    fn messages(flows: &[IpfixFlow], domain: u32) -> Vec<u8> {
        let mut seq = 0;
        ipfix::encode_messages(flows, 1, domain, &mut seq, 5)
            .into_iter()
            .flatten()
            .collect()
    }

    #[test]
    fn whole_stream_decodes() {
        let input = flows(12);
        let stream = messages(&input, 7);
        let mut s = ExporterSession::new();
        let mut out = Vec::new();
        s.feed(&stream, &mut out);
        assert_eq!(out, input);
        assert_eq!(s.messages, 3, "12 flows at 5/message");
        assert_eq!(s.flows, 12);
        assert_eq!(s.decode_errors(), 0);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn any_chunking_decodes_identically() {
        let input = flows(20);
        let stream = messages(&input, 7);
        for chunk_size in [1, 3, 16, 64, 1000] {
            let mut s = ExporterSession::new();
            let mut out = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                s.feed(chunk, &mut out);
            }
            assert_eq!(out, input, "chunk size {chunk_size}");
            assert_eq!(s.bytes, stream.len() as u64);
            assert_eq!(s.decode_errors(), 0);
        }
    }

    #[test]
    fn garbage_between_messages_is_survived() {
        let input = flows(6);
        let mut seq = 0;
        let msgs = ipfix::encode_messages(&input, 1, 7, &mut seq, 3);
        let mut stream = msgs[0].clone();
        stream.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x55, 0x66, 0x77]);
        stream.extend_from_slice(&msgs[1]);
        let mut s = ExporterSession::new();
        let mut out = Vec::new();
        s.feed(&stream, &mut out);
        assert_eq!(out, input, "both messages recovered around the garbage");
        assert!(s.framing_errors > 0, "the garbage was counted");
    }

    #[test]
    fn sessions_do_not_share_templates() {
        // Exporter A never sends a template (its stream starts with a
        // hand-built data-set-only message); exporter B's templates must
        // not leak into A's session.
        let input = flows(4);
        let b_stream = messages(&input, 2);
        let mut c = StreamCollector::new();
        let got_b = c.feed("B", &b_stream);
        assert_eq!(got_b, input);

        // A data-only message: header + data set referencing template 256.
        let mut a_msg: Vec<u8> = Vec::new();
        a_msg.extend_from_slice(&10u16.to_be_bytes());
        a_msg.extend_from_slice(&0u16.to_be_bytes()); // patched below
        a_msg.extend_from_slice(&0u32.to_be_bytes());
        a_msg.extend_from_slice(&0u32.to_be_bytes());
        a_msg.extend_from_slice(&9u32.to_be_bytes());
        a_msg.extend_from_slice(&256u16.to_be_bytes());
        let set_len = 4 + ipfix::FLOW_RECORD_LEN;
        a_msg.extend_from_slice(&(set_len as u16).to_be_bytes());
        a_msg.extend_from_slice(&[0u8; ipfix::FLOW_RECORD_LEN]);
        let total = a_msg.len() as u16;
        a_msg[2..4].copy_from_slice(&total.to_be_bytes());

        let got_a = c.feed("A", &a_msg);
        assert!(got_a.is_empty(), "A has no template for id 256");
        assert_eq!(c.session("A").unwrap().collector().unknown_sets, 1);
        assert_eq!(c.session("B").unwrap().decode_errors(), 0);
    }

    #[test]
    fn interleaved_exporters_keep_their_counters_apart() {
        let a_in = flows(5);
        let b_in = flows(9);
        let a_stream = messages(&a_in, 1);
        let b_stream = messages(&b_in, 2);
        let mut c = StreamCollector::new();
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        // Interleave in small chunks.
        let mut ai = a_stream.chunks(7);
        let mut bi = b_stream.chunks(11);
        loop {
            let a = ai.next();
            let b = bi.next();
            if let Some(chunk) = a {
                got_a.extend(c.feed("A", chunk));
            }
            if let Some(chunk) = b {
                got_b.extend(c.feed("B", chunk));
            }
            if a.is_none() && b.is_none() {
                break;
            }
        }
        assert_eq!(got_a, a_in);
        assert_eq!(got_b, b_in);
        assert_eq!(c.session("A").unwrap().flows, 5);
        assert_eq!(c.session("B").unwrap().flows, 9);
        assert_eq!(c.total_flows(), 14);
        let names: Vec<&str> = c.sessions().map(|(n, _)| n).collect();
        assert_eq!(names, ["A", "B"], "deterministic session order");
    }

    #[test]
    fn datagram_feed_counts_and_recovers() {
        let input = flows(6);
        let mut seq = 0;
        let msgs = ipfix::encode_messages(&input, 1, 7, &mut seq, 3);
        let mut s = ExporterSession::new();
        let mut out = Vec::new();
        // Datagram 1: both messages, whole.
        let dg1: Vec<u8> = msgs.iter().flatten().copied().collect();
        assert!(s.feed_datagram(&dg1, &mut out));
        assert_eq!(out, input);
        assert_eq!(s.messages, 2);
        // Datagram 2: torn tail → counted, dropped, nothing appended.
        let torn = &dg1[..dg1.len() - 3];
        assert!(!s.feed_datagram(torn, &mut out));
        assert_eq!(out, input, "rejected datagram appends nothing");
        assert_eq!(s.bad_datagrams, 1);
        assert_eq!(s.decode_errors(), 1);
        // Datagram 3: clean again — no desync.
        assert!(s.feed_datagram(&dg1, &mut out));
        assert_eq!(s.flows, 12);
        assert_eq!(s.bytes, (dg1.len() * 2 + torn.len()) as u64);
    }

    #[test]
    fn datagram_and_stream_feeds_do_not_interfere() {
        // A half message left buffered by the stream path must not bleed
        // into datagram decoding, and vice versa.
        let input = flows(4);
        let stream = messages(&input, 7);
        let mut s = ExporterSession::new();
        let mut out = Vec::new();
        let half = stream.len() / 2;
        s.feed(&stream[..half], &mut out);
        assert!(s.buffered() > 0);
        // Whole datagram between the two stream halves.
        assert!(s.feed_datagram(&stream, &mut out));
        // Then the rest of the stream.
        s.feed(&stream[half..], &mut out);
        let mut expect = input.clone();
        expect.extend_from_slice(&input);
        assert_eq!(out, expect);
        assert_eq!(s.decode_errors(), 0);
    }

    #[test]
    fn collector_feed_datagram_into_keys_sessions() {
        let input = flows(3);
        let dg = messages(&input, 1);
        let mut c = StreamCollector::new();
        let mut out = Vec::new();
        assert!(c.feed_datagram_into("udp:peer", &dg, &mut out));
        assert_eq!(out, input);
        assert!(!c.feed_datagram_into("udp:peer", &[0xff; 3], &mut out));
        assert_eq!(c.session("udp:peer").unwrap().bad_datagrams, 1);
        assert_eq!(c.total_decode_errors(), 1);
    }

    #[test]
    fn split_header_at_tail_is_not_lost() {
        let input = flows(3);
        let stream = messages(&input, 7);
        let mut s = ExporterSession::new();
        let mut out = Vec::new();
        // Garbage that ends with the first byte of a real header, then
        // the rest of the stream in a later chunk.
        let mut first = vec![0xffu8, 0xfe];
        first.push(stream[0]);
        s.feed(&first, &mut out);
        s.feed(&stream[1..], &mut out);
        assert_eq!(out, input);
    }
}
