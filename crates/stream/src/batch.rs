//! Recycled record batches for the collector→ingest queue.
//!
//! The queue moves *batches* of records, not single records, so one
//! lock round-trip amortizes over a whole chunk's worth of flows. This
//! module adds the second half of that amortization: the `Vec` backing
//! each batch is returned to a [`BatchPool`] after the worker folds it,
//! so steady-state ingest recycles a fixed set of buffers instead of
//! allocating and freeing one per batch.
//!
//! The pool is deliberately bounded: it never holds more buffers than
//! can be in flight at once (queue capacity plus one per worker plus
//! the producer's scratch), so a traffic burst cannot ratchet memory up
//! permanently.

use mt_flow::FlowRecord;
use mt_types::Day;
use std::sync::Mutex;

/// One unit of ingest work: a day's worth of records from one chunk.
#[derive(Debug)]
pub struct RecordBatch {
    /// The day every record in the batch belongs to.
    pub day: Day,
    /// The records, in arrival order.
    pub records: Vec<FlowRecord>,
}

/// A bounded free-list of record buffers shared between the producer
/// (which takes buffers to build batches) and the ingest workers (which
/// return them once folded).
#[derive(Debug)]
pub struct BatchPool {
    free: Mutex<Vec<Vec<FlowRecord>>>,
    max_pooled: usize,
}

impl BatchPool {
    /// Creates a pool retaining at most `max_pooled` idle buffers;
    /// buffers returned beyond that are simply dropped.
    pub fn new(max_pooled: usize) -> Self {
        BatchPool {
            free: Mutex::new(Vec::new()),
            max_pooled,
        }
    }

    /// Hands out an empty buffer, reusing a pooled one when available.
    pub fn take(&self) -> Vec<FlowRecord> {
        crate::sync::lock(&self.free).pop().unwrap_or_default() // lock: stream.pool
    }

    /// Returns a buffer to the pool. The contents are cleared; the
    /// allocation is kept unless the pool is already full.
    pub fn put(&self, mut buf: Vec<FlowRecord>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        let mut free = crate::sync::lock(&self.free); // lock: stream.pool
        if free.len() < self.max_pooled {
            free.push(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn pooled(&self) -> usize {
        crate::sync::lock(&self.free).len() // lock: stream.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::{Ipv4, SimTime};

    fn record() -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: Ipv4::new(9, 0, 0, 1),
            dst: Ipv4::new(20, 0, 0, 1),
            src_port: 40_000,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets: 1,
            octets: 40,
        }
    }

    #[test]
    fn put_then_take_recycles_the_allocation() {
        let pool = BatchPool::new(4);
        let mut buf = pool.take();
        assert_eq!(buf.capacity(), 0, "cold pool hands out fresh buffers");
        for _ in 0..100 {
            buf.push(record());
        }
        let cap = buf.capacity();
        pool.put(buf);
        assert_eq!(pool.pooled(), 1);
        let reused = pool.take();
        assert!(reused.is_empty(), "recycled buffers come back cleared");
        assert_eq!(reused.capacity(), cap, "the allocation is preserved");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let pool = BatchPool::new(2);
        for _ in 0..5 {
            let mut buf = Vec::with_capacity(8);
            buf.push(record());
            pool.put(buf);
        }
        assert_eq!(pool.pooled(), 2, "returns beyond the cap are dropped");
        // Zero-capacity buffers are not worth pooling.
        pool.take();
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 1);
    }
}
