//! TCP segment view (RFC 9293 header layout).
//!
//! IBR is dominated by bare 20-byte SYN segments (40 bytes on the wire
//! with the IPv4 header) and SYNs with a single MSS option (48 bytes) —
//! the fingerprint the paper's classifier exploits. This module provides
//! the view plus a [`Repr`] that can emit exactly those shapes.

use crate::checksum;
use crate::{Result, WireError};
use mt_types::Ipv4;

mod field {
    pub const SRC_PORT: std::ops::Range<usize> = 0..2;
    pub const DST_PORT: std::ops::Range<usize> = 2..4;
    pub const SEQ: std::ops::Range<usize> = 4..8;
    pub const ACK: std::ops::Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: std::ops::Range<usize> = 14..16;
    pub const CHECKSUM: std::ops::Range<usize> = 16..18;
    pub const URGENT: std::ops::Range<usize> = 18..20;
}

/// Length of a TCP header without options.
pub const HEADER_LEN: usize = 20;

/// Tiny local stand-in for the `bitflags` crate: declares a transparent
/// flags newtype with `contains`/`union` and const members.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident : $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $value:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
        pub struct $name(pub $ty);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($value); )*

            /// The empty flag set.
            pub const fn empty() -> Self { $name(0) }

            /// Whether all bits of `other` are set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// Union of two flag sets.
            pub const fn union(self, other: $name) -> $name {
                $name(self.0 | other.0)
            }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { self.union(rhs) }
        }
    };
}

bitflags_lite! {
    /// TCP control flags (low 8 bits of byte 13).
    pub struct Flags: u8 {
        /// FIN.
        const FIN = 0x01;
        /// SYN.
        const SYN = 0x02;
        /// RST.
        const RST = 0x04;
        /// PSH.
        const PSH = 0x08;
        /// ACK.
        const ACK = 0x10;
        /// URG.
        const URG = 0x20;
    }
}

/// A read/write view of a TCP segment.
#[derive(Debug, Clone)]
pub struct Segment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Segment<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Segment<T> {
        Segment { buffer }
    }

    /// Wraps and validates: the buffer must hold the fixed header and the
    /// data offset must be in range and fit the buffer.
    pub fn new_checked(buffer: T) -> Result<Segment<T>> {
        let seg = Segment::new_unchecked(buffer);
        seg.check()?;
        Ok(seg)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let off = self.header_len() as usize;
        if off < HEADER_LEN {
            return Err(WireError::Malformed);
        }
        if off > data.len() {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::DST_PORT)
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        crate::bytes::be_u32(self.buffer.as_ref(), field::SEQ)
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        crate::bytes::be_u32(self.buffer.as_ref(), field::ACK)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Control flags.
    pub fn flags(&self) -> Flags {
        Flags(self.buffer.as_ref()[field::FLAGS] & 0x3f)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::WINDOW)
    }

    /// The options bytes (between the fixed header and the payload).
    pub fn options(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.header_len() as usize]
    }

    /// The payload following the header and options.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len() as usize..]
    }

    /// Verifies the transport checksum against the pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4, dst: Ipv4) -> bool {
        checksum::verify_pseudo(src, dst, 6, self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Segment<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&seq.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack(&mut self, ack: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&ack.to_be_bytes());
    }

    /// Sets the header length in bytes (multiple of 4, 20..=60).
    pub fn set_header_len(&mut self, len: u8) {
        debug_assert!((20..=60).contains(&len) && len.is_multiple_of(4));
        self.buffer.as_mut()[field::DATA_OFF] = (len / 4) << 4;
    }

    /// Sets the control flags.
    pub fn set_flags(&mut self, flags: Flags) {
        self.buffer.as_mut()[field::FLAGS] = flags.0;
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, window: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&window.to_be_bytes());
    }

    /// Zeroes the urgent pointer.
    pub fn clear_urgent(&mut self) {
        self.buffer.as_mut()[field::URGENT].fill(0);
    }

    /// Mutable access to the options region.
    pub fn options_mut(&mut self) -> &mut [u8] {
        let end = self.header_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..end]
    }

    /// Computes and writes the checksum; call last.
    pub fn fill_checksum(&mut self, src: Ipv4, dst: Ipv4) {
        self.buffer.as_mut()[field::CHECKSUM].fill(0);
        let sum = checksum::pseudo_header_checksum(src, dst, 6, self.buffer.as_ref());
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }
}

/// The single TCP option shape the generators emit: MSS (kind 2, length 4)
/// padded with a NOP pair is not needed since MSS alone is 4 bytes.
pub const MSS_OPTION_LEN: usize = 4;

/// High-level representation of a TCP segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Control flags.
    pub flags: Flags,
    /// Receive window.
    pub window: u16,
    /// Maximum segment size option; `Some` adds 4 bytes of options
    /// (producing the 48-byte on-wire SYN the paper observes).
    pub mss: Option<u16>,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// A bare SYN to `dst_port` — the canonical scanning probe.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Repr {
        Repr {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: Flags::SYN,
            window: 65535,
            mss: None,
            payload_len: 0,
        }
    }

    /// Buffer length required for the segment.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
            + if self.mss.is_some() {
                MSS_OPTION_LEN
            } else {
                0
            }
            + self.payload_len
    }

    /// Parses and validates a segment into its representation.
    pub fn parse<T: AsRef<[u8]>>(seg: &Segment<T>, src: Ipv4, dst: Ipv4) -> Result<Repr> {
        if !seg.verify_checksum(src, dst) {
            return Err(WireError::Checksum);
        }
        let mss = match seg.options() {
            [] => None,
            [2, 4, hi, lo, ..] => Some(u16::from_be_bytes([*hi, *lo])),
            _ => None,
        };
        Ok(Repr {
            src_port: seg.src_port(),
            dst_port: seg.dst_port(),
            seq: seg.seq(),
            ack: seg.ack(),
            flags: seg.flags(),
            window: seg.window(),
            mss,
            payload_len: seg.payload().len(),
        })
    }

    /// Emits the header (and MSS option if present) into `seg` and fills
    /// the checksum. The buffer must be exactly [`Repr::buffer_len`] long
    /// so the checksum covers the payload the caller wrote beforehand —
    /// write the payload first, then call `emit`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, seg: &mut Segment<T>, src: Ipv4, dst: Ipv4) {
        let header_len = HEADER_LEN
            + if self.mss.is_some() {
                MSS_OPTION_LEN
            } else {
                0
            };
        seg.set_src_port(self.src_port);
        seg.set_dst_port(self.dst_port);
        seg.set_seq(self.seq);
        seg.set_ack(self.ack);
        seg.set_header_len(header_len as u8);
        seg.set_flags(self.flags);
        seg.set_window(self.window);
        seg.clear_urgent();
        if let Some(mss) = self.mss {
            let opts = seg.options_mut();
            opts[0] = 2;
            opts[1] = 4;
            opts[2..4].copy_from_slice(&mss.to_be_bytes());
        }
        seg.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4 = Ipv4::new(192, 0, 2, 1);
    const DST: Ipv4 = Ipv4::new(198, 51, 100, 2);

    fn emit(repr: Repr) -> Vec<u8> {
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut seg = Segment::new_unchecked(&mut buf);
        repr.emit(&mut seg, SRC, DST);
        buf
    }

    #[test]
    fn bare_syn_is_20_bytes_and_roundtrips() {
        let repr = Repr::syn(44321, 23, 0xdeadbeef);
        let buf = emit(repr);
        assert_eq!(buf.len(), 20);
        let seg = Segment::new_checked(&buf[..]).unwrap();
        assert!(seg.verify_checksum(SRC, DST));
        assert_eq!(Repr::parse(&seg, SRC, DST).unwrap(), repr);
        assert!(seg.flags().contains(Flags::SYN));
        assert!(!seg.flags().contains(Flags::ACK));
    }

    #[test]
    fn syn_with_mss_is_24_bytes() {
        let mut repr = Repr::syn(1024, 443, 1);
        repr.mss = Some(1460);
        let buf = emit(repr);
        assert_eq!(buf.len(), 24, "SYN+MSS segment is 24 bytes (48 on wire)");
        let seg = Segment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.options(), &[2, 4, 0x05, 0xb4]);
        assert_eq!(Repr::parse(&seg, SRC, DST).unwrap().mss, Some(1460));
    }

    #[test]
    fn synack_flags() {
        let repr = Repr {
            flags: Flags::SYN | Flags::ACK,
            ..Repr::syn(80, 50000, 7)
        };
        let buf = emit(repr);
        let seg = Segment::new_checked(&buf[..]).unwrap();
        assert!(seg.flags().contains(Flags::SYN | Flags::ACK));
        assert!(!seg.flags().contains(Flags::RST));
    }

    #[test]
    fn checksum_detects_corruption() {
        let buf = {
            let mut b = emit(Repr::syn(1, 2, 3));
            b[14] ^= 0x01; // window
            b
        };
        let seg = Segment::new_checked(&buf[..]).unwrap();
        assert!(!seg.verify_checksum(SRC, DST));
        assert_eq!(
            Repr::parse(&seg, SRC, DST).unwrap_err(),
            WireError::Checksum
        );
    }

    #[test]
    fn checked_rejects_bad_offsets() {
        assert_eq!(
            Segment::new_checked(&[0u8; 10][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = emit(Repr::syn(1, 2, 3));
        buf[12] = 0x10; // data offset 4 → 16 bytes, below minimum
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
        buf[12] = 0xf0; // data offset 15 → 60 bytes, beyond buffer
        assert_eq!(
            Segment::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn payload_checksummed() {
        let repr = Repr {
            payload_len: 5,
            flags: Flags::PSH | Flags::ACK,
            ..Repr::syn(5000, 80, 9)
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        buf[HEADER_LEN..].copy_from_slice(b"hello");
        let mut seg = Segment::new_unchecked(&mut buf);
        repr.emit(&mut seg, SRC, DST);
        let seg = Segment::new_checked(&buf[..]).unwrap();
        assert!(seg.verify_checksum(SRC, DST));
        assert_eq!(seg.payload(), b"hello");
    }
}
