//! ICMPv4 message view (RFC 792) — echo request/reply and destination
//! unreachable, the message types that appear in IBR (ping scans and
//! backscatter).

use crate::checksum;
use crate::{Result, WireError};

mod field {
    pub const TYPE: usize = 0;
    pub const CODE: usize = 1;
    pub const CHECKSUM: std::ops::Range<usize> = 2..4;
    pub const REST: std::ops::Range<usize> = 4..8;
}

/// Length of the ICMP header.
pub const HEADER_LEN: usize = 8;

/// ICMP message types the workspace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Message {
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3).
    DestUnreachable,
    /// Echo request (type 8).
    EchoRequest,
    /// Time exceeded (type 11).
    TimeExceeded,
    /// Anything else, kept raw.
    Other(u8),
}

impl Message {
    /// The on-wire type value.
    pub const fn type_value(self) -> u8 {
        match self {
            Message::EchoReply => 0,
            Message::DestUnreachable => 3,
            Message::EchoRequest => 8,
            Message::TimeExceeded => 11,
            Message::Other(t) => t,
        }
    }

    /// Decodes a type value.
    pub const fn from_type(t: u8) -> Message {
        match t {
            0 => Message::EchoReply,
            3 => Message::DestUnreachable,
            8 => Message::EchoRequest,
            11 => Message::TimeExceeded,
            other => Message::Other(other),
        }
    }
}

/// A read/write view of an ICMPv4 message.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wraps and validates the buffer (header must fit).
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Packet { buffer })
    }

    /// The message type.
    pub fn message(&self) -> Message {
        Message::from_type(self.buffer.as_ref()[field::TYPE])
    }

    /// The code field.
    pub fn code(&self) -> u8 {
        self.buffer.as_ref()[field::CODE]
    }

    /// Echo identifier (meaningful for echo messages).
    pub fn echo_ident(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), 4..6)
    }

    /// Echo sequence number (meaningful for echo messages).
    pub fn echo_seq(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), 6..8)
    }

    /// Payload after the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Verifies the message checksum (covers the whole buffer).
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.buffer.as_ref())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Sets the message type.
    pub fn set_message(&mut self, m: Message) {
        self.buffer.as_mut()[field::TYPE] = m.type_value();
    }

    /// Sets the code.
    pub fn set_code(&mut self, code: u8) {
        self.buffer.as_mut()[field::CODE] = code;
    }

    /// Sets the echo identifier and sequence number.
    pub fn set_echo(&mut self, ident: u16, seq: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&ident.to_be_bytes());
        self.buffer.as_mut()[6..8].copy_from_slice(&seq.to_be_bytes());
    }

    /// Zeroes the "rest of header" field (for non-echo messages).
    pub fn clear_rest(&mut self) {
        self.buffer.as_mut()[field::REST].fill(0);
    }

    /// Computes and writes the checksum; call last.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].fill(0);
        let sum = checksum::checksum(self.buffer.as_ref());
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_request_roundtrip() {
        let mut buf = vec![0u8; HEADER_LEN + 8];
        let mut p = Packet::new_unchecked(&mut buf);
        p.set_message(Message::EchoRequest);
        p.set_code(0);
        p.set_echo(0x1234, 7);
        p.fill_checksum();
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum());
        assert_eq!(p.message(), Message::EchoRequest);
        assert_eq!(p.echo_ident(), 0x1234);
        assert_eq!(p.echo_seq(), 7);
    }

    #[test]
    fn message_type_roundtrip() {
        for t in 0u8..=255 {
            assert_eq!(Message::from_type(t).type_value(), t);
        }
    }

    #[test]
    fn corruption_detected() {
        let mut buf = vec![0u8; HEADER_LEN];
        let mut p = Packet::new_unchecked(&mut buf);
        p.set_message(Message::DestUnreachable);
        p.set_code(1);
        p.clear_rest();
        p.fill_checksum();
        buf[1] = 3;
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(
            Packet::new_checked(&[0u8; 4][..]).unwrap_err(),
            WireError::Truncated
        );
    }
}
