//! UDP datagram view (RFC 768).

use crate::checksum;
use crate::{Result, WireError};
use mt_types::Ipv4;

mod field {
    pub const SRC_PORT: std::ops::Range<usize> = 0..2;
    pub const DST_PORT: std::ops::Range<usize> = 2..4;
    pub const LENGTH: std::ops::Range<usize> = 4..6;
    pub const CHECKSUM: std::ops::Range<usize> = 6..8;
}

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

/// A read/write view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Datagram<T> {
        Datagram { buffer }
    }

    /// Wraps and validates: the header must fit and the length field must
    /// cover the header and fit the buffer.
    pub fn new_checked(buffer: T) -> Result<Datagram<T>> {
        let dg = Datagram::new_unchecked(buffer);
        dg.check()?;
        Ok(dg)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = self.len_field() as usize;
        if len < HEADER_LEN {
            return Err(WireError::Malformed);
        }
        if len > data.len() {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::DST_PORT)
    }

    /// The length field (header plus payload).
    pub fn len_field(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::LENGTH)
    }

    /// The payload, bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field() as usize]
    }

    /// Verifies the checksum against the pseudo-header. A zero checksum
    /// means "not computed" and is accepted, per RFC 768.
    pub fn verify_checksum(&self, src: Ipv4, dst: Ipv4) -> bool {
        let data = &self.buffer.as_ref()[..self.len_field() as usize];
        let stored = crate::bytes::be_u16(data, field::CHECKSUM);
        stored == 0 || checksum::verify_pseudo(src, dst, 17, data)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Datagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Computes and writes the checksum over header + payload. If the
    /// computed sum is zero it is transmitted as `0xffff`, per RFC 768.
    pub fn fill_checksum(&mut self, src: Ipv4, dst: Ipv4) {
        let len = self.len_field() as usize;
        self.buffer.as_mut()[field::CHECKSUM].fill(0);
        let sum = checksum::pseudo_header_checksum(src, dst, 17, &self.buffer.as_ref()[..len]);
        let sum = if sum == 0 { 0xffff } else { sum };
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }
}

/// High-level representation of a UDP datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Buffer length required for the datagram.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Parses and validates a datagram.
    pub fn parse<T: AsRef<[u8]>>(dg: &Datagram<T>, src: Ipv4, dst: Ipv4) -> Result<Repr> {
        if !dg.verify_checksum(src, dst) {
            return Err(WireError::Checksum);
        }
        Ok(Repr {
            src_port: dg.src_port(),
            dst_port: dg.dst_port(),
            payload_len: dg.payload().len(),
        })
    }

    /// Emits the header into `dg` and fills the checksum. Write the
    /// payload into the buffer first.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, dg: &mut Datagram<T>, src: Ipv4, dst: Ipv4) {
        dg.set_src_port(self.src_port);
        dg.set_dst_port(self.dst_port);
        dg.set_len_field((HEADER_LEN + self.payload_len) as u16);
        dg.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4 = Ipv4::new(10, 0, 0, 1);
    const DST: Ipv4 = Ipv4::new(10, 0, 0, 2);

    #[test]
    fn emit_parse_roundtrip() {
        let repr = Repr {
            src_port: 53,
            dst_port: 33000,
            payload_len: 4,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        buf[HEADER_LEN..].copy_from_slice(b" abcd"[1..].try_into().unwrap());
        let mut dg = Datagram::new_unchecked(&mut buf);
        repr.emit(&mut dg, SRC, DST);
        let dg = Datagram::new_checked(&buf[..]).unwrap();
        assert!(dg.verify_checksum(SRC, DST));
        assert_eq!(Repr::parse(&dg, SRC, DST).unwrap(), repr);
        assert_eq!(dg.payload(), b"abcd");
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&8u16.to_be_bytes());
        let dg = Datagram::new_checked(&buf[..]).unwrap();
        assert!(dg.verify_checksum(SRC, DST));
    }

    /// RFC 768: a checksum that *computes* to `0x0000` must be
    /// transmitted as `0xffff`, because `0x0000` on the wire means "no
    /// checksum". This vector is built so the one's-complement sum is
    /// exactly `0xffff` (pseudo-header: src 0 + dst 0 + proto 17 +
    /// len 8; header words: 0xff00 + 0x00de + 0x0008), whose complement
    /// is zero — the one case where the substitution fires.
    #[test]
    fn computed_zero_checksum_is_transmitted_as_ffff() {
        let src = Ipv4(0);
        let dst = Ipv4(0);
        let repr = Repr {
            src_port: 0xff00,
            dst_port: 0x00de,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut dg = Datagram::new_unchecked(&mut buf);
        repr.emit(&mut dg, src, dst);
        assert_eq!(
            u16::from_be_bytes([buf[6], buf[7]]),
            0xffff,
            "computed 0x0000 must be sent as 0xffff, not as the no-checksum sentinel"
        );
        let dg = Datagram::new_checked(&buf[..]).unwrap();
        assert!(dg.verify_checksum(src, dst));
        assert_eq!(Repr::parse(&dg, src, dst).unwrap(), repr);
    }

    #[test]
    fn corruption_detected() {
        let repr = Repr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut dg = Datagram::new_unchecked(&mut buf);
        repr.emit(&mut dg, SRC, DST);
        buf[0] ^= 0xff;
        let dg = Datagram::new_checked(&buf[..]).unwrap();
        assert!(!dg.verify_checksum(SRC, DST));
    }

    #[test]
    fn checked_rejects_bad_lengths() {
        assert_eq!(
            Datagram::new_checked(&[0u8; 4][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // below header size
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
        buf[4..6].copy_from_slice(&20u16.to_be_bytes()); // beyond buffer
        assert_eq!(
            Datagram::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated
        );
    }
}
