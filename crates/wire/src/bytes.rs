//! Fixed-width field reads shared by every header view.
//!
//! Each packet type validates its buffer length once in `new_checked`;
//! after that, field accessors read constant `field::*` ranges that are
//! in bounds by construction. These helpers centralise the
//! slice-to-array step so that invariant is stated (and pragma'd for
//! the no-panic lint) in exactly one place instead of at every
//! accessor.

use std::ops::Range;

/// Reads `N` bytes at `range` as a fixed-size array.
///
/// Invariant: callers pass a constant `field::*` range of length `N`
/// that lies inside a buffer whose length was validated at
/// construction (`new_checked` / header reads of fixed-size arrays).
/// An out-of-contract call is a programming error in the caller, not a
/// decode error, so a loud panic is the correct failure mode.
pub(crate) fn array<const N: usize>(data: &[u8], range: Range<usize>) -> [u8; N] {
    // check: allow(no_panic, "field ranges are compile-time constants of length N inside length-validated buffers")
    data[range].try_into().expect("field range length mismatch")
}

/// Reads a big-endian `u16` at `range` (a constant 2-byte field range).
pub(crate) fn be_u16(data: &[u8], range: Range<usize>) -> u16 {
    u16::from_be_bytes(array(data, range))
}

/// Reads a big-endian `u32` at `range` (a constant 4-byte field range).
pub(crate) fn be_u32(data: &[u8], range: Range<usize>) -> u32 {
    u32::from_be_bytes(array(data, range))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_positional() {
        let data = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc];
        assert_eq!(be_u16(&data, 0..2), 0x1234);
        assert_eq!(be_u16(&data, 2..4), 0x5678);
        assert_eq!(be_u32(&data, 1..5), 0x3456_789a);
        assert_eq!(array::<3>(&data, 3..6), [0x78, 0x9a, 0xbc]);
    }

    #[test]
    #[should_panic(expected = "field range length mismatch")]
    fn out_of_contract_range_panics() {
        array::<4>(&[0u8; 8], 0..2);
    }
}
