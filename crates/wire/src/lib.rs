//! Wire formats for the meta-telescope workspace.
//!
//! Follows the smoltcp idiom: a packet type is a thin wrapper over a byte
//! buffer (`Packet<T: AsRef<[u8]>>`) with checked construction, typed field
//! accessors, and setters when the buffer is mutable. No implicit
//! allocation, no surprises; malformed input is rejected with a typed
//! [`WireError`], never a panic.
//!
//! Contents:
//! - [`ethernet`] — Ethernet II frames;
//! - [`ipv4`] — IPv4 headers with checksum generation/validation;
//! - [`tcp`] / [`udp`] / [`icmp`] — transport headers (TCP and UDP
//!   checksums use the IPv4 pseudo-header);
//! - [`pcap`] — classic libpcap capture files (reader and writer), the
//!   format the operational telescopes export;
//! - [`ipfix`] — an RFC 7011 subset ("IPFIX-lite"): template and data
//!   sets sufficient to carry the flow records the IXP vantage points
//!   export;
//! - [`checksum`] — the Internet one's-complement checksum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;

pub mod checksum;
pub mod ethernet;
pub mod icmp;
pub mod ipfix;
pub mod ipv4;
pub mod pcap;
pub mod tcp;
pub mod udp;

use std::fmt;

/// Errors raised when parsing or emitting wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the header (or declared length) requires.
    Truncated,
    /// A field holds a value the format does not allow.
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// An IPFIX data record referenced a template that was never seen.
    UnknownTemplate(u16),
    /// A version field did not match the expected protocol version.
    Version,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::Malformed => write!(f, "malformed field"),
            WireError::Checksum => write!(f, "checksum mismatch"),
            WireError::UnknownTemplate(id) => write!(f, "unknown IPFIX template {id}"),
            WireError::Version => write!(f, "unexpected protocol version"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, WireError>;

/// IP protocol numbers used by the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp = 1,
    /// TCP (6).
    Tcp = 6,
    /// UDP (17).
    Udp = 17,
}

impl IpProtocol {
    /// Parses a protocol number, returning `None` for protocols the
    /// workspace does not model.
    pub const fn from_u8(v: u8) -> Option<IpProtocol> {
        match v {
            1 => Some(IpProtocol::Icmp),
            6 => Some(IpProtocol::Tcp),
            17 => Some(IpProtocol::Udp),
            _ => None,
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        p as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_roundtrip() {
        for p in [IpProtocol::Icmp, IpProtocol::Tcp, IpProtocol::Udp] {
            assert_eq!(IpProtocol::from_u8(u8::from(p)), Some(p));
        }
        assert_eq!(IpProtocol::from_u8(99), None);
    }

    #[test]
    fn error_display() {
        assert_eq!(WireError::Truncated.to_string(), "buffer truncated");
        assert_eq!(
            WireError::UnknownTemplate(300).to_string(),
            "unknown IPFIX template 300"
        );
    }
}
