//! IPFIX-lite: the RFC 7011 subset the IXP vantage points use to export
//! sampled flow records.
//!
//! Implemented: the 16-byte message header (version 10), template sets
//! (set id 2) with IANA information elements, and data sets keyed by
//! template id. Not implemented (not needed by the workspace): options
//! templates, enterprise-specific elements, variable-length fields,
//! template withdrawal.
//!
//! The exporter emits the template set at the start of every message, as
//! RFC 7011 permits (UDP transports re-send templates periodically; doing
//! it per message keeps every message self-describing, which matters for
//! a file-based interchange). The collector learns templates as they
//! appear and rejects data sets that reference an unknown template.

use crate::{Result, WireError};
use bytes::{Buf, BufMut};

/// The IPFIX protocol version.
pub const VERSION: u16 = 10;

/// Set id of a template set.
pub const TEMPLATE_SET_ID: u16 = 2;

/// The template id this exporter uses for flow records (data set ids must
/// be ≥ 256).
pub const FLOW_TEMPLATE_ID: u16 = 256;

/// IANA information element ids used by the flow template, in record
/// order, with their encoded lengths.
pub const FLOW_FIELDS: &[(u16, u16)] = &[
    (8, 4),   // sourceIPv4Address
    (12, 4),  // destinationIPv4Address
    (7, 2),   // sourceTransportPort
    (11, 2),  // destinationTransportPort
    (4, 1),   // protocolIdentifier
    (6, 1),   // tcpControlBits
    (2, 8),   // packetDeltaCount
    (1, 8),   // octetDeltaCount
    (150, 4), // flowStartSeconds
];

/// Encoded length of one data record under [`FLOW_FIELDS`].
pub const FLOW_RECORD_LEN: usize = 4 + 4 + 2 + 2 + 1 + 1 + 8 + 8 + 4;

/// One exported flow record, as carried on the wire.
///
/// `packets` and `octets` are *sampled* delta counts; the sampling rate is
/// conveyed out of band (per vantage-point metadata), as is common in IXP
/// deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpfixFlow {
    /// Source IPv4 address.
    pub src: mt_types::Ipv4,
    /// Destination IPv4 address.
    pub dst: mt_types::Ipv4,
    /// Source transport port (0 for ICMP).
    pub src_port: u16,
    /// Destination transport port (0 for ICMP).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
    /// Union of TCP flags seen on the sampled packets.
    pub tcp_flags: u8,
    /// Sampled packet count.
    pub packets: u64,
    /// Sampled octet count.
    pub octets: u64,
    /// Flow start, seconds since the simulation epoch.
    pub start_secs: u32,
}

impl IpfixFlow {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u8(self.protocol);
        buf.put_u8(self.tcp_flags);
        buf.put_u64(self.packets);
        buf.put_u64(self.octets);
        buf.put_u32(self.start_secs);
    }

    fn decode<B: Buf>(buf: &mut B) -> IpfixFlow {
        IpfixFlow {
            src: mt_types::Ipv4(buf.get_u32()),
            dst: mt_types::Ipv4(buf.get_u32()),
            src_port: buf.get_u16(),
            dst_port: buf.get_u16(),
            protocol: buf.get_u8(),
            tcp_flags: buf.get_u8(),
            packets: buf.get_u64(),
            octets: buf.get_u64(),
            start_secs: buf.get_u32(),
        }
    }
}

/// Encodes flow records into one or more IPFIX messages.
///
/// Each message carries the template set followed by a data set with up to
/// `max_records_per_message` records. `sequence` is the exporter's running
/// data-record counter (RFC 7011 §3.1) and is advanced by this call.
pub fn encode_messages(
    flows: &[IpfixFlow],
    export_time: u32,
    domain: u32,
    sequence: &mut u32,
    max_records_per_message: usize,
) -> Vec<Vec<u8>> {
    assert!(max_records_per_message > 0);
    let mut messages = Vec::new();
    let chunks: Vec<&[IpfixFlow]> = if flows.is_empty() {
        vec![&[][..]] // still emit one message so templates propagate
    } else {
        flows.chunks(max_records_per_message).collect()
    };
    for chunk in chunks {
        let mut msg = Vec::with_capacity(64 + chunk.len() * FLOW_RECORD_LEN);
        // Message header; length patched at the end.
        msg.put_u16(VERSION);
        msg.put_u16(0);
        msg.put_u32(export_time);
        msg.put_u32(*sequence);
        msg.put_u32(domain);
        // Template set.
        let tmpl_len = 4 + 4 + FLOW_FIELDS.len() * 4;
        msg.put_u16(TEMPLATE_SET_ID);
        msg.put_u16(tmpl_len as u16);
        msg.put_u16(FLOW_TEMPLATE_ID);
        msg.put_u16(FLOW_FIELDS.len() as u16);
        for &(ie, len) in FLOW_FIELDS {
            msg.put_u16(ie);
            msg.put_u16(len);
        }
        // Data set.
        if !chunk.is_empty() {
            msg.put_u16(FLOW_TEMPLATE_ID);
            msg.put_u16((4 + chunk.len() * FLOW_RECORD_LEN) as u16);
            for flow in chunk {
                flow.encode(&mut msg);
            }
        }
        let total = msg.len() as u16;
        msg[2..4].copy_from_slice(&total.to_be_bytes());
        *sequence = sequence.wrapping_add(chunk.len() as u32);
        messages.push(msg);
    }
    messages
}

/// A collector that consumes IPFIX messages and yields flow records.
///
/// Learns template definitions from template sets; a template whose field
/// layout differs from [`FLOW_FIELDS`] is remembered but its data records
/// are skipped (we only understand our own layout). Unknown set ids are
/// skipped per RFC 7011 §8.
///
/// A long-running collector must not lose a whole message because one
/// set inside it is bad (a UDP exporter will never re-send it), so set
/// level problems are *counted*, not raised: data sets referencing a
/// template that was never seen bump [`Collector::unknown_sets`], and
/// structurally broken sets (impossible set length, truncated or
/// out-of-range template records, trailing garbage) bump
/// [`Collector::malformed_sets`] — decoding then resumes at the next
/// set boundary when one exists, or gives up on the rest of the message
/// when the boundary itself is lost. Hard [`WireError`]s remain only for
/// unparseable *message headers* (short buffer, wrong version, declared
/// length out of range), where nothing after the error can be trusted.
#[derive(Debug, Default)]
pub struct Collector {
    /// Template id → record length, for templates matching our layout.
    known: std::collections::HashMap<u16, usize>,
    /// Template id → record length, for templates with a foreign layout.
    foreign: std::collections::HashMap<u16, usize>,
    /// Count of data records skipped because their template was foreign.
    pub skipped_records: u64,
    /// Count of data sets skipped because their template was never seen.
    pub unknown_sets: u64,
    /// Count of sets (or set remainders) skipped as structurally
    /// malformed: a set length under 4 or past the message end, a broken
    /// template record, or trailing bytes shorter than a set header.
    pub malformed_sets: u64,
    /// Reusable field-list buffer for template parsing, so a long-lived
    /// collector decodes template sets without per-record allocation.
    scratch_fields: Vec<(u16, u16)>,
}

impl Collector {
    /// Creates an empty collector (no templates known yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total sets skipped for any reason (unknown template or malformed
    /// structure) — the "decode trouble" signal a streaming session
    /// surfaces per exporter.
    pub fn skipped_sets(&self) -> u64 {
        self.unknown_sets + self.malformed_sets
    }

    /// Parses one message, appending decoded flows to `out`.
    ///
    /// Returns `Err` only for unparseable message headers; bad sets
    /// inside an otherwise well-framed message are skipped and counted
    /// (see the type-level docs).
    pub fn decode_message(&mut self, mut msg: &[u8], out: &mut Vec<IpfixFlow>) -> Result<()> {
        if msg.len() < 16 {
            return Err(WireError::Truncated);
        }
        let declared = u16::from_be_bytes([msg[2], msg[3]]) as usize;
        if u16::from_be_bytes([msg[0], msg[1]]) != VERSION {
            return Err(WireError::Version);
        }
        if declared < 16 || declared > msg.len() {
            return Err(WireError::Truncated);
        }
        msg = &msg[..declared];
        let mut body = &msg[16..];
        while body.remaining() >= 4 {
            let set_id = body.get_u16();
            let set_len = body.get_u16() as usize;
            if set_len < 4 || set_len - 4 > body.remaining() {
                // The set boundary is lost; nothing after this point in
                // the message can be framed. Skip the remainder.
                self.malformed_sets += 1;
                return Ok(());
            }
            let (set_body, rest) = body.split_at(set_len - 4);
            body = rest;
            match set_id {
                TEMPLATE_SET_ID => self.learn_templates(set_body),
                id if id >= 256 => self.decode_data_set(id, set_body, out),
                _ => {} // options templates etc.: skipped
            }
        }
        if !body.is_empty() {
            // Trailing bytes shorter than a set header.
            self.malformed_sets += 1;
        }
        Ok(())
    }

    /// Parses one UDP datagram carrying whole IPFIX message(s) — the
    /// RFC 7011 §10.3 datagram transport, where message boundaries never
    /// straddle datagrams. Returns the number of messages decoded.
    ///
    /// Datagrams are all-or-nothing: a bad message header, a declared
    /// length overrunning the datagram, trailing bytes shorter than a
    /// header, or an empty datagram rejects the *whole* datagram — `out`
    /// is rolled back to its entry length so a partially-decoded
    /// datagram never leaks records. Templates learned from earlier
    /// messages in a rejected datagram stand (template learning is
    /// monotone per session, so keeping them cannot desync anything),
    /// and set-level trouble inside well-framed messages stays counted,
    /// not fatal, exactly as in [`decode_message`](Self::decode_message).
    pub fn decode_datagram(&mut self, datagram: &[u8], out: &mut Vec<IpfixFlow>) -> Result<u64> {
        let entry = out.len();
        let mut pos = 0usize;
        let mut messages = 0u64;
        while datagram.len() - pos >= 16 {
            let declared = u16::from_be_bytes([datagram[pos + 2], datagram[pos + 3]]) as usize;
            if declared < 16 || declared > datagram.len() - pos {
                out.truncate(entry);
                return Err(WireError::Truncated);
            }
            if let Err(e) = self.decode_message(&datagram[pos..pos + declared], out) {
                out.truncate(entry);
                return Err(e);
            }
            pos += declared;
            messages += 1;
        }
        if pos != datagram.len() || messages == 0 {
            // Trailing bytes shorter than a message header, or an empty
            // datagram: nothing an exporter would ever legitimately send.
            out.truncate(entry);
            return Err(WireError::Malformed);
        }
        Ok(messages)
    }

    fn learn_templates(&mut self, mut set: &[u8]) {
        // A template set may hold several template records; trailing
        // padding shorter than a record header is permitted. A broken
        // record loses the in-set framing, so the rest of the set is
        // skipped (and counted) — but templates already learned stand.
        while set.remaining() >= 4 {
            let template_id = set.get_u16();
            let field_count = set.get_u16() as usize;
            if template_id < 256 || set.remaining() < field_count * 4 {
                self.malformed_sets += 1;
                return;
            }
            self.scratch_fields.clear();
            let mut record_len = 0usize;
            let mut enterprise = false;
            for _ in 0..field_count {
                let ie = set.get_u16();
                let len = set.get_u16();
                // Enterprise elements are out of scope.
                enterprise |= ie & 0x8000 != 0;
                record_len += len as usize;
                self.scratch_fields.push((ie, len));
            }
            if enterprise {
                self.malformed_sets += 1;
                return;
            }
            if self.scratch_fields == FLOW_FIELDS {
                self.known.insert(template_id, record_len);
                self.foreign.remove(&template_id);
            } else {
                self.foreign.insert(template_id, record_len);
                self.known.remove(&template_id);
            }
        }
    }

    fn decode_data_set(&mut self, template_id: u16, mut set: &[u8], out: &mut Vec<IpfixFlow>) {
        if let Some(&len) = self.known.get(&template_id) {
            while set.remaining() >= len {
                out.push(IpfixFlow::decode(&mut set));
            }
        } else if let Some(&len) = self.foreign.get(&template_id) {
            if let Some(skipped) = set.remaining().checked_div(len) {
                self.skipped_records += skipped as u64;
            }
        } else {
            self.unknown_sets += 1;
        }
    }
}

/// Streaming transport: IPFIX messages concatenated on a byte stream
/// (the file/TCP transport of RFC 7011 §10.4). Messages are
/// self-delimiting via the length field in their header, so no extra
/// framing is needed — the reader peeks the 16-byte header, then reads
/// the remainder.
pub mod stream {
    use super::{Collector, IpfixFlow, Result, WireError};
    use std::io::{self, Read, Write};

    /// Writes messages to a byte stream.
    #[derive(Debug)]
    pub struct MessageWriter<W: Write> {
        inner: W,
        sequence: u32,
        domain: u32,
        /// Messages written so far.
        pub messages: u64,
    }

    impl<W: Write> MessageWriter<W> {
        /// Creates a writer for one observation domain.
        pub fn new(inner: W, domain: u32) -> Self {
            MessageWriter {
                inner,
                sequence: 0,
                domain,
                messages: 0,
            }
        }

        /// Encodes and writes `flows` as one or more messages stamped
        /// `export_time`.
        pub fn write_flows(&mut self, flows: &[IpfixFlow], export_time: u32) -> io::Result<()> {
            for msg in
                super::encode_messages(flows, export_time, self.domain, &mut self.sequence, 800)
            {
                self.inner.write_all(&msg)?;
                self.messages += 1;
            }
            Ok(())
        }

        /// Flushes and returns the underlying writer.
        pub fn finish(mut self) -> io::Result<W> {
            self.inner.flush()?;
            Ok(self.inner)
        }
    }

    /// Reads messages from a byte stream and decodes their flows.
    #[derive(Debug)]
    pub struct MessageReader<R: Read> {
        inner: R,
        collector: Collector,
        /// Reusable message buffer: one allocation grown to the largest
        /// message seen, instead of a fresh `Vec` per message.
        scratch: Vec<u8>,
        /// Messages consumed so far.
        pub messages: u64,
    }

    impl<R: Read> MessageReader<R> {
        /// Creates a reader with a fresh template collector.
        pub fn new(inner: R) -> Self {
            MessageReader {
                inner,
                collector: Collector::new(),
                scratch: Vec::new(),
                messages: 0,
            }
        }

        /// The underlying template collector (skip/error counters).
        pub fn collector(&self) -> &Collector {
            &self.collector
        }

        /// Reads the next message, appending its flows to `out`.
        /// `Ok(false)` at clean end of stream.
        pub fn read_message(&mut self, out: &mut Vec<IpfixFlow>) -> Result<bool> {
            let mut header = [0u8; 16];
            // Clean EOF only if zero bytes remain.
            let mut filled = 0;
            while filled < header.len() {
                match self.inner.read(&mut header[filled..]) {
                    Ok(0) if filled == 0 => return Ok(false),
                    Ok(0) => return Err(WireError::Truncated),
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Err(WireError::Truncated),
                }
            }
            let length = u16::from_be_bytes([header[2], header[3]]) as usize;
            if length < 16 {
                return Err(WireError::Malformed);
            }
            self.scratch.clear();
            self.scratch.resize(length, 0);
            self.scratch[..16].copy_from_slice(&header);
            self.inner
                .read_exact(&mut self.scratch[16..])
                .map_err(|_| WireError::Truncated)?;
            self.collector.decode_message(&self.scratch, out)?;
            self.messages += 1;
            Ok(true)
        }

        /// Reads the whole stream into a flow list.
        pub fn read_all(&mut self) -> Result<Vec<IpfixFlow>> {
            let mut out = Vec::new();
            while self.read_message(&mut out)? {}
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::Ipv4;

    fn sample_flow(i: u32) -> IpfixFlow {
        IpfixFlow {
            src: Ipv4(0x0a000000 + i),
            dst: Ipv4(0xc0000200 + i),
            src_port: 40000 + i as u16,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 0x02,
            packets: 1 + u64::from(i),
            octets: 40 * (1 + u64::from(i)),
            start_secs: 1000 + i,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let flows: Vec<IpfixFlow> = (0..10).map(sample_flow).collect();
        let mut seq = 0;
        let msgs = encode_messages(&flows, 42, 7, &mut seq, 4);
        assert_eq!(msgs.len(), 3, "10 flows at 4/message → 3 messages");
        assert_eq!(seq, 10);
        let mut collector = Collector::new();
        let mut out = Vec::new();
        for m in &msgs {
            collector.decode_message(m, &mut out).unwrap();
        }
        assert_eq!(out, flows);
        assert_eq!(collector.skipped_records, 0);
    }

    #[test]
    fn empty_flow_list_still_produces_template_message() {
        let mut seq = 0;
        let msgs = encode_messages(&[], 1, 1, &mut seq, 100);
        assert_eq!(msgs.len(), 1);
        let mut collector = Collector::new();
        let mut out = Vec::new();
        collector.decode_message(&msgs[0], &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn data_before_template_is_skipped_and_counted() {
        let flows = vec![sample_flow(0)];
        let mut seq = 0;
        let msgs = encode_messages(&flows, 1, 1, &mut seq, 10);
        // Strip the template set out of the message: keep header, then
        // re-assemble with only the data set.
        let msg = &msgs[0];
        let tmpl_len = 4 + 4 + FLOW_FIELDS.len() * 4;
        let mut stripped = msg[..16].to_vec();
        stripped.extend_from_slice(&msg[16 + tmpl_len..]);
        let total = stripped.len() as u16;
        stripped[2..4].copy_from_slice(&total.to_be_bytes());
        let mut collector = Collector::new();
        let mut out = Vec::new();
        // The set is skipped (counted), not a hard error: a later message
        // carrying the template must still decode on the same session.
        collector.decode_message(&stripped, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(collector.unknown_sets, 1);
        for m in &msgs {
            collector.decode_message(m, &mut out).unwrap();
        }
        assert_eq!(out, flows);
    }

    #[test]
    fn malformed_set_length_skips_rest_of_message_only() {
        // Message: [good data set][set with impossible length]. The good
        // set decodes; the bad one is counted and the tail abandoned.
        let flows = vec![sample_flow(0), sample_flow(1)];
        let mut seq = 0;
        let mut msg = encode_messages(&flows, 1, 1, &mut seq, 10).remove(0);
        let patch_total = |msg: &mut Vec<u8>| {
            let total = msg.len() as u16;
            msg[2..4].copy_from_slice(&total.to_be_bytes());
        };
        // Append a set whose declared length (3) is under the 4-byte header.
        msg.put_u16(999);
        msg.put_u16(3);
        patch_total(&mut msg);
        let mut collector = Collector::new();
        let mut out = Vec::new();
        collector.decode_message(&msg, &mut out).unwrap();
        assert_eq!(out, flows, "sets before the bad one still decode");
        assert_eq!(collector.malformed_sets, 1);
        // A set length pointing past the message end is likewise counted.
        let mut msg2 = encode_messages(&flows, 1, 1, &mut seq, 10).remove(0);
        msg2.put_u16(999);
        msg2.put_u16(60_000);
        patch_total(&mut msg2);
        let mut out2 = Vec::new();
        collector.decode_message(&msg2, &mut out2).unwrap();
        assert_eq!(out2, flows);
        assert_eq!(collector.malformed_sets, 2);
    }

    #[test]
    fn broken_template_record_keeps_earlier_templates() {
        // A template set holding one valid FLOW_FIELDS template followed
        // by a record with an in-range id but a field count overrunning
        // the set: the good template is learned, the tail counted.
        let mut msg = Vec::new();
        msg.put_u16(VERSION);
        msg.put_u16(0);
        msg.put_u32(0);
        msg.put_u32(0);
        msg.put_u32(0);
        let tmpl_body = 4 + FLOW_FIELDS.len() * 4 + 4; // good record + bad header
        msg.put_u16(TEMPLATE_SET_ID);
        msg.put_u16((4 + tmpl_body) as u16);
        msg.put_u16(FLOW_TEMPLATE_ID);
        msg.put_u16(FLOW_FIELDS.len() as u16);
        for &(ie, len) in FLOW_FIELDS {
            msg.put_u16(ie);
            msg.put_u16(len);
        }
        msg.put_u16(300); // second template record ...
        msg.put_u16(500); // ... claims 500 fields with none present
                          // Data set for the good template.
        msg.put_u16(FLOW_TEMPLATE_ID);
        msg.put_u16((4 + FLOW_RECORD_LEN) as u16);
        sample_flow(3).encode(&mut msg);
        let total = msg.len() as u16;
        msg[2..4].copy_from_slice(&total.to_be_bytes());
        let mut collector = Collector::new();
        let mut out = Vec::new();
        collector.decode_message(&msg, &mut out).unwrap();
        assert_eq!(out, vec![sample_flow(3)]);
        assert_eq!(collector.malformed_sets, 1);
        assert_eq!(collector.skipped_sets(), 1);
    }

    #[test]
    fn foreign_template_records_are_skipped() {
        // Build a message with a foreign template (one 2-byte field) and
        // a matching data set with 3 records.
        let mut msg = Vec::new();
        msg.put_u16(VERSION);
        msg.put_u16(0);
        msg.put_u32(0);
        msg.put_u32(0);
        msg.put_u32(0);
        msg.put_u16(TEMPLATE_SET_ID);
        msg.put_u16(4 + 4 + 4);
        msg.put_u16(300);
        msg.put_u16(1);
        msg.put_u16(7); // sourceTransportPort only
        msg.put_u16(2);
        msg.put_u16(300);
        msg.put_u16(4 + 6);
        msg.put_slice(&[0u8; 6]);
        let total = msg.len() as u16;
        msg[2..4].copy_from_slice(&total.to_be_bytes());
        let mut collector = Collector::new();
        let mut out = Vec::new();
        collector.decode_message(&msg, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(collector.skipped_records, 3);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut seq = 0;
        let mut msg = encode_messages(&[sample_flow(1)], 1, 1, &mut seq, 10).remove(0);
        msg[0..2].copy_from_slice(&9u16.to_be_bytes());
        let mut collector = Collector::new();
        assert_eq!(
            collector.decode_message(&msg, &mut Vec::new()).unwrap_err(),
            WireError::Version
        );
    }

    #[test]
    fn truncated_message_rejected() {
        let mut seq = 0;
        let msg = encode_messages(&[sample_flow(1)], 1, 1, &mut seq, 10).remove(0);
        let mut collector = Collector::new();
        assert_eq!(
            collector
                .decode_message(&msg[..msg.len() - 5], &mut Vec::new())
                .unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn datagram_with_multiple_whole_messages_decodes() {
        let flows: Vec<IpfixFlow> = (0..10).map(sample_flow).collect();
        let mut seq = 0;
        let datagram: Vec<u8> = encode_messages(&flows, 42, 7, &mut seq, 4)
            .into_iter()
            .flatten()
            .collect();
        let mut collector = Collector::new();
        let mut out = Vec::new();
        assert_eq!(collector.decode_datagram(&datagram, &mut out).unwrap(), 3);
        assert_eq!(out, flows);
    }

    #[test]
    fn datagram_truncated_tail_rejects_whole_datagram() {
        let flows: Vec<IpfixFlow> = (0..8).map(sample_flow).collect();
        let mut seq = 0;
        let mut datagram: Vec<u8> = encode_messages(&flows, 42, 7, &mut seq, 4)
            .into_iter()
            .flatten()
            .collect();
        datagram.truncate(datagram.len() - 5); // tear the second message
        let mut collector = Collector::new();
        let mut out = vec![sample_flow(99)];
        assert!(collector.decode_datagram(&datagram, &mut out).is_err());
        assert_eq!(
            out,
            vec![sample_flow(99)],
            "a rejected datagram leaks no records, even from its good first message"
        );
    }

    #[test]
    fn datagram_trailing_garbage_rejects_whole_datagram() {
        let mut seq = 0;
        let mut datagram = encode_messages(&[sample_flow(0)], 1, 1, &mut seq, 10).remove(0);
        datagram.extend_from_slice(&[0xde, 0xad, 0xbe]); // < header size
        let mut collector = Collector::new();
        let mut out = Vec::new();
        assert_eq!(
            collector.decode_datagram(&datagram, &mut out).unwrap_err(),
            WireError::Malformed
        );
        assert!(out.is_empty());
    }

    #[test]
    fn empty_datagram_rejected() {
        let mut collector = Collector::new();
        assert_eq!(
            collector.decode_datagram(&[], &mut Vec::new()).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn datagram_wrong_version_rejected_without_desync() {
        // Datagram 1: [good message][wrong-version message] → rejected,
        // but the template from the good message is retained (monotone),
        // so datagram 2 — data set only — still decodes on this session.
        let mut seq = 0;
        let good = encode_messages(&[sample_flow(0)], 1, 1, &mut seq, 10).remove(0);
        let mut bad = good.clone();
        bad[0..2].copy_from_slice(&9u16.to_be_bytes());
        let mut datagram = good.clone();
        datagram.extend_from_slice(&bad);
        let mut collector = Collector::new();
        let mut out = Vec::new();
        assert_eq!(
            collector.decode_datagram(&datagram, &mut out).unwrap_err(),
            WireError::Version
        );
        assert!(out.is_empty());

        // Data-only message referencing the (now learned) template.
        let mut data_only = Vec::new();
        data_only.put_u16(VERSION);
        data_only.put_u16(0);
        data_only.put_u32(0);
        data_only.put_u32(1);
        data_only.put_u32(1);
        data_only.put_u16(FLOW_TEMPLATE_ID);
        data_only.put_u16((4 + FLOW_RECORD_LEN) as u16);
        sample_flow(5).encode(&mut data_only);
        let total = data_only.len() as u16;
        data_only[2..4].copy_from_slice(&total.to_be_bytes());
        assert_eq!(collector.decode_datagram(&data_only, &mut out).unwrap(), 1);
        assert_eq!(out, vec![sample_flow(5)], "session not desynced");
    }

    #[test]
    fn datagram_heartbeat_is_one_message() {
        // A template-only message (no flows) is a legitimate datagram.
        let mut seq = 0;
        let datagram = encode_messages(&[], 1, 1, &mut seq, 10).remove(0);
        let mut collector = Collector::new();
        let mut out = Vec::new();
        assert_eq!(collector.decode_datagram(&datagram, &mut out).unwrap(), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn stream_roundtrip_multiple_batches() {
        let mut buf = Vec::new();
        {
            let mut w = stream::MessageWriter::new(&mut buf, 7);
            w.write_flows(&(0..5).map(sample_flow).collect::<Vec<_>>(), 100)
                .unwrap();
            w.write_flows(&[], 101).unwrap(); // heartbeat: templates only
            w.write_flows(&(5..9).map(sample_flow).collect::<Vec<_>>(), 102)
                .unwrap();
            w.finish().unwrap();
        }
        let mut r = stream::MessageReader::new(&buf[..]);
        let flows = r.read_all().unwrap();
        assert_eq!(flows, (0..9).map(sample_flow).collect::<Vec<_>>());
        assert_eq!(r.messages, 3);
    }

    #[test]
    fn stream_reader_detects_torn_tail() {
        let mut buf = Vec::new();
        {
            let mut w = stream::MessageWriter::new(&mut buf, 7);
            w.write_flows(&[sample_flow(0)], 100).unwrap();
            w.finish().unwrap();
        }
        buf.truncate(buf.len() - 3);
        let mut r = stream::MessageReader::new(&buf[..]);
        assert_eq!(r.read_all().unwrap_err(), WireError::Truncated);
        // A tear inside the header is also truncation, not clean EOF.
        let mut r = stream::MessageReader::new(&buf[..7]);
        assert_eq!(r.read_all().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn stream_empty_is_clean_eof() {
        let mut r = stream::MessageReader::new(&[][..]);
        assert_eq!(r.read_all().unwrap(), Vec::new());
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn record_len_constant_matches_fields() {
        let sum: usize = FLOW_FIELDS.iter().map(|&(_, l)| l as usize).sum();
        assert_eq!(sum, FLOW_RECORD_LEN);
    }
}
