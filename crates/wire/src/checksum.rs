//! The Internet checksum (RFC 1071) used by IPv4, TCP, UDP and ICMP.

use mt_types::Ipv4;

/// Sums 16-bit big-endian words of `data` into a 32-bit accumulator,
/// padding an odd trailing byte with zero.
fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds the 32-bit accumulator into the final one's-complement 16-bit
/// checksum.
fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Checksum of a plain byte range (used for the IPv4 header and ICMP).
pub fn checksum(data: &[u8]) -> u16 {
    fold(sum_words(0, data))
}

/// Checksum of a transport payload preceded by the IPv4 pseudo-header
/// (src, dst, zero, protocol, length), as required by TCP and UDP.
pub fn pseudo_header_checksum(src: Ipv4, dst: Ipv4, protocol: u8, payload: &[u8]) -> u16 {
    let mut acc = 0u32;
    acc = sum_words(acc, &src.octets());
    acc = sum_words(acc, &dst.octets());
    acc += u32::from(protocol);
    acc += payload.len() as u32;
    acc = sum_words(acc, payload);
    fold(acc)
}

/// Verifies a buffer whose checksum field is already filled in: summing the
/// entire range must yield zero (i.e. `0xffff` before complement).
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// Verifies a transport segment (checksum field filled in) against the
/// pseudo-header.
pub fn verify_pseudo(src: Ipv4, dst: Ipv4, protocol: u8, segment: &[u8]) -> bool {
    pseudo_header_checksum(src, dst, protocol, segment) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The RFC 1071 worked example.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0xddf2, checksum = !0xddf2 = 0x220d.
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0x12]), !0x1200);
        assert_eq!(checksum(&[0x12, 0x00]), !0x1200);
    }

    #[test]
    fn verify_of_checksummed_buffer() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x28, 0x00, 0x00, 0x40, 0x00, 0x40, 0x06, 0, 0,
        ];
        let c = checksum(&data);
        data[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 1;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_roundtrip() {
        let src = Ipv4::new(192, 0, 2, 1);
        let dst = Ipv4::new(198, 51, 100, 2);
        let mut segment = vec![0u8; 20];
        segment[0..2].copy_from_slice(&443u16.to_be_bytes());
        let c = pseudo_header_checksum(src, dst, 6, &segment);
        segment[16..18].copy_from_slice(&c.to_be_bytes());
        assert!(verify_pseudo(src, dst, 6, &segment));
        // The one's-complement sum is order-insensitive, so swapping src
        // and dst verifies too; a *different* address must not.
        assert!(verify_pseudo(dst, src, 6, &segment));
        assert!(
            !verify_pseudo(Ipv4::new(192, 0, 2, 2), dst, 6, &segment),
            "a different address must fail"
        );
    }

    #[test]
    fn empty_buffer_checksums_to_ffff() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
