//! IPv4 packet view (RFC 791), smoltcp style.
//!
//! [`Packet`] wraps any `AsRef<[u8]>` buffer; `new_checked` validates the
//! version, header length and declared total length against the buffer
//! before any accessor can be reached, so accessors themselves are
//! infallible. With an `AsMut<[u8]>` buffer the setters can build packets
//! in place; [`Repr`] is the parsed high-level representation used when
//! crafting packets from scratch.

use crate::checksum;
use crate::{IpProtocol, Result, WireError};
use mt_types::Ipv4;

mod field {
    pub const VER_IHL: usize = 0;
    pub const DSCP_ECN: usize = 1;
    pub const LENGTH: std::ops::Range<usize> = 2..4;
    pub const IDENT: std::ops::Range<usize> = 4..6;
    pub const FLAGS_FRAG: std::ops::Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: std::ops::Range<usize> = 10..12;
    pub const SRC: std::ops::Range<usize> = 12..16;
    pub const DST: std::ops::Range<usize> = 16..20;
}

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// A read/write view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wraps a buffer without validation. Accessors may panic on short
    /// buffers; use [`Packet::new_checked`] for untrusted input.
    pub fn new_unchecked(buffer: T) -> Packet<T> {
        Packet { buffer }
    }

    /// Wraps and validates a buffer: version must be 4, the header length
    /// field must be at least 20 bytes and fit the buffer, and the total
    /// length must cover the header and fit the buffer.
    pub fn new_checked(buffer: T) -> Result<Packet<T>> {
        let packet = Packet::new_unchecked(buffer);
        packet.check()?;
        Ok(packet)
    }

    fn check(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if data[field::VER_IHL] >> 4 != 4 {
            return Err(WireError::Version);
        }
        let header_len = self.header_len() as usize;
        if header_len < HEADER_LEN || header_len > data.len() {
            return Err(WireError::Malformed);
        }
        let total_len = self.total_len() as usize;
        if total_len < header_len {
            return Err(WireError::Malformed);
        }
        if total_len > data.len() {
            return Err(WireError::Truncated);
        }
        Ok(())
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// The total length field: header plus payload, in bytes.
    pub fn total_len(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::LENGTH)
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// The protocol field (may be a protocol we do not model).
    pub fn protocol_raw(&self) -> u8 {
        self.buffer.as_ref()[field::PROTOCOL]
    }

    /// The protocol field, decoded.
    pub fn protocol(&self) -> Option<IpProtocol> {
        IpProtocol::from_u8(self.protocol_raw())
    }

    /// Source address.
    pub fn src(&self) -> Ipv4 {
        Ipv4::from_octets(crate::bytes::array(self.buffer.as_ref(), field::SRC))
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4 {
        Ipv4::from_octets(crate::bytes::array(self.buffer.as_ref(), field::DST))
    }

    /// The header checksum field.
    pub fn header_checksum(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::CHECKSUM)
    }

    /// Verifies the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let header = &self.buffer.as_ref()[..self.header_len() as usize];
        checksum::verify(header)
    }

    /// The payload (transport segment), bounded by the total-length field.
    pub fn payload(&self) -> &[u8] {
        let header = self.header_len() as usize;
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[header..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Writes version 4 and the header length (must be a multiple of 4,
    /// 20..=60).
    pub fn set_header_len(&mut self, len: u8) {
        debug_assert!((20..=60).contains(&len) && len.is_multiple_of(4));
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | (len / 4);
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Sets the protocol.
    pub fn set_protocol(&mut self, protocol: IpProtocol) {
        self.buffer.as_mut()[field::PROTOCOL] = protocol.into();
    }

    /// Sets the source address.
    pub fn set_src(&mut self, src: Ipv4) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&src.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, dst: Ipv4) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&dst.octets());
    }

    /// Zeroes the identification, flags and fragment-offset fields and the
    /// DSCP/ECN byte (the generators never emit fragments).
    pub fn clear_variable_fields(&mut self) {
        let b = self.buffer.as_mut();
        b[field::DSCP_ECN] = 0;
        b[field::IDENT].fill(0);
        b[field::FLAGS_FRAG].fill(0);
    }

    /// Computes and writes the header checksum. Call after all other
    /// header fields are final.
    pub fn fill_checksum(&mut self) {
        let header_len = self.header_len() as usize;
        self.buffer.as_mut()[field::CHECKSUM].fill(0);
        let sum = checksum::checksum(&self.buffer.as_ref()[..header_len]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&sum.to_be_bytes());
    }

    /// Mutable access to the payload region.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let header = self.header_len() as usize;
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[header..total]
    }
}

/// High-level representation of an IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src: Ipv4,
    /// Destination address.
    pub dst: Ipv4,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
}

impl Repr {
    /// Parses and validates a packet into its representation.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        if !packet.verify_checksum() {
            return Err(WireError::Checksum);
        }
        let protocol = packet.protocol().ok_or(WireError::Malformed)?;
        Ok(Repr {
            src: packet.src(),
            dst: packet.dst(),
            protocol,
            payload_len: packet.payload().len(),
            ttl: packet.ttl(),
        })
    }

    /// Buffer length required to emit this header plus payload.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emits the header into `packet` (whose buffer must be at least
    /// [`Repr::buffer_len`] long) and fills the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_header_len(HEADER_LEN as u8);
        packet.clear_variable_fields();
        packet.set_total_len((HEADER_LEN + self.payload_len) as u16);
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src(self.src);
        packet.set_dst(self.dst);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: Ipv4, dst: Ipv4, payload: &[u8]) -> Vec<u8> {
        let repr = Repr {
            src,
            dst,
            protocol: IpProtocol::Tcp,
            payload_len: payload.len(),
            ttl: 64,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = Packet::new_unchecked(&mut buf);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(payload);
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let src = Ipv4::new(192, 0, 2, 1);
        let dst = Ipv4::new(203, 0, 113, 9);
        let buf = build(src, dst, b"hello");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        let repr = Repr::parse(&packet).unwrap();
        assert_eq!(repr.src, src);
        assert_eq!(repr.dst, dst);
        assert_eq!(repr.protocol, IpProtocol::Tcp);
        assert_eq!(packet.payload(), b"hello");
        assert_eq!(packet.total_len(), 25);
    }

    #[test]
    fn checked_rejects_short_buffer() {
        assert_eq!(
            Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn checked_rejects_wrong_version() {
        let mut buf = build(Ipv4::new(1, 1, 1, 1), Ipv4::new(2, 2, 2, 2), b"");
        buf[0] = 0x65; // version 6
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Version
        );
    }

    #[test]
    fn checked_rejects_bad_lengths() {
        let mut buf = build(Ipv4::new(1, 1, 1, 1), Ipv4::new(2, 2, 2, 2), b"abc");
        // Claim a total length longer than the buffer.
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated
        );
        // Claim an IHL of 4 (16 bytes, below minimum).
        buf[2..4].copy_from_slice(&23u16.to_be_bytes());
        buf[0] = 0x44;
        assert_eq!(
            Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Malformed
        );
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = build(Ipv4::new(1, 2, 3, 4), Ipv4::new(5, 6, 7, 8), b"");
        buf[8] ^= 0xff; // flip the TTL
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum());
        assert_eq!(Repr::parse(&packet).unwrap_err(), WireError::Checksum);
    }

    #[test]
    fn payload_is_bounded_by_total_len() {
        // Buffer has trailing garbage beyond the declared total length.
        let mut buf = build(Ipv4::new(1, 2, 3, 4), Ipv4::new(5, 6, 7, 8), b"xy");
        buf.extend_from_slice(b"garbage");
        let packet = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload(), b"xy");
    }

    #[test]
    fn min_syn_packet_is_40_bytes() {
        // A 20-byte TCP header carried in a 20-byte IPv4 header: the
        // canonical 40-byte IBR packet of the paper's Section 4.1.
        let repr = Repr {
            src: Ipv4::new(9, 9, 9, 9),
            dst: Ipv4::new(10, 0, 0, 1),
            protocol: IpProtocol::Tcp,
            payload_len: 20,
            ttl: 250,
        };
        assert_eq!(repr.buffer_len(), 40);
    }
}
