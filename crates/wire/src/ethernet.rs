//! Ethernet II frame view.
//!
//! The telescope capture path stores raw IP (pcap linktype RAW), but the
//! IXP port mirrors the pipeline could consume in a live deployment carry
//! Ethernet frames, so the frame view is provided for completeness and
//! used by the pcap reader when a file declares linktype EN10MB.

use crate::{Result, WireError};
use std::fmt;

mod field {
    pub const DST: std::ops::Range<usize> = 0..6;
    pub const SRC: std::ops::Range<usize> = 6..12;
    pub const ETHERTYPE: std::ops::Range<usize> = 12..14;
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

/// A read/write view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Frame<T> {
        Frame { buffer }
    }

    /// Wraps and validates (header must fit).
    pub fn new_checked(buffer: T) -> Result<Frame<T>> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Frame { buffer })
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        MacAddr(crate::bytes::array(self.buffer.as_ref(), field::DST))
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        MacAddr(crate::bytes::array(self.buffer.as_ref(), field::SRC))
    }

    /// EtherType.
    pub fn ethertype(&self) -> u16 {
        crate::bytes::be_u16(self.buffer.as_ref(), field::ETHERTYPE)
    }

    /// The encapsulated payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Frame<T> {
    /// Sets the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&mac.0);
    }

    /// Sets the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&mac.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, ethertype: u16) {
        self.buffer.as_mut()[field::ETHERTYPE].copy_from_slice(&ethertype.to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut f = Frame::new_unchecked(&mut buf);
        let src = MacAddr([2, 0, 0, 0, 0, 1]);
        f.set_dst(MacAddr::BROADCAST);
        f.set_src(src);
        f.set_ethertype(ETHERTYPE_IPV4);
        f.payload_mut().copy_from_slice(b"abcd");
        let f = Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.dst(), MacAddr::BROADCAST);
        assert_eq!(f.src(), src);
        assert_eq!(f.ethertype(), ETHERTYPE_IPV4);
        assert_eq!(f.payload(), b"abcd");
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(
            Frame::new_checked(&[0u8; 13][..]).unwrap_err(),
            WireError::Truncated
        );
    }
}
