//! Classic libpcap capture files (the format operational telescopes
//! export and the paper's Table 5 port analysis consumes).
//!
//! Supports writing and reading the 24-byte global header plus per-packet
//! records. The writer emits little-endian files with microsecond
//! timestamps; the reader additionally accepts big-endian files (magic
//! `0xa1b2c3d4` read either way) and tolerates truncated final records by
//! reporting them as errors rather than panicking.

use crate::{Result, WireError};
use std::io::{self, Read, Write};

/// Little-endian / native magic for microsecond-resolution files.
pub const MAGIC: u32 = 0xa1b2_c3d4;

/// Linktype for raw IPv4/IPv6 packets (LINKTYPE_RAW).
pub const LINKTYPE_RAW: u32 = 101;

/// Linktype for Ethernet frames (LINKTYPE_ETHERNET).
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Default snap length: capture whole packets.
pub const DEFAULT_SNAPLEN: u32 = 65_535;

/// A captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Capture timestamp, seconds part.
    pub ts_sec: u32,
    /// Capture timestamp, microseconds part.
    pub ts_usec: u32,
    /// Original length on the wire (may exceed `data.len()` if the
    /// capture was truncated by the snap length).
    pub orig_len: u32,
    /// The captured bytes.
    pub data: Vec<u8>,
}

/// Streaming pcap writer.
#[derive(Debug)]
pub struct Writer<W: Write> {
    inner: W,
    snaplen: u32,
}

impl<W: Write> Writer<W> {
    /// Creates a writer and emits the global header.
    pub fn new(mut inner: W, linktype: u32) -> io::Result<Writer<W>> {
        let mut header = [0u8; 24];
        header[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        header[4..6].copy_from_slice(&2u16.to_le_bytes()); // major
        header[6..8].copy_from_slice(&4u16.to_le_bytes()); // minor
                                                           // thiszone and sigfigs stay zero.
        header[16..20].copy_from_slice(&DEFAULT_SNAPLEN.to_le_bytes());
        header[20..24].copy_from_slice(&linktype.to_le_bytes());
        inner.write_all(&header)?;
        Ok(Writer {
            inner,
            snaplen: DEFAULT_SNAPLEN,
        })
    }

    /// Writes one packet record, truncating to the snap length.
    pub fn write_packet(&mut self, ts_sec: u32, ts_usec: u32, packet: &[u8]) -> io::Result<()> {
        let incl = packet.len().min(self.snaplen as usize);
        let mut rec = [0u8; 16];
        rec[0..4].copy_from_slice(&ts_sec.to_le_bytes());
        rec[4..8].copy_from_slice(&ts_usec.to_le_bytes());
        rec[8..12].copy_from_slice(&(incl as u32).to_le_bytes());
        rec[12..16].copy_from_slice(&(packet.len() as u32).to_le_bytes());
        self.inner.write_all(&rec)?;
        self.inner.write_all(&packet[..incl])
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming pcap reader.
#[derive(Debug)]
pub struct Reader<R: Read> {
    inner: R,
    big_endian: bool,
    linktype: u32,
    snaplen: u32,
}

impl<R: Read> Reader<R> {
    /// Creates a reader, consuming and validating the global header.
    pub fn new(mut inner: R) -> Result<Reader<R>> {
        let mut header = [0u8; 24];
        inner
            .read_exact(&mut header)
            .map_err(|_| WireError::Truncated)?;
        let magic_le = u32::from_le_bytes(crate::bytes::array(&header, 0..4));
        let big_endian = match magic_le {
            MAGIC => false,
            m if m.swap_bytes() == MAGIC => true,
            _ => return Err(WireError::Malformed),
        };
        let u32_at = |range: std::ops::Range<usize>| {
            let bytes: [u8; 4] = crate::bytes::array(&header, range);
            if big_endian {
                u32::from_be_bytes(bytes)
            } else {
                u32::from_le_bytes(bytes)
            }
        };
        Ok(Reader {
            inner,
            big_endian,
            snaplen: u32_at(16..20),
            linktype: u32_at(20..24),
        })
    }

    /// The file's linktype.
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// The file's snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Reads the next record; `Ok(None)` at clean end of file.
    pub fn next_record(&mut self) -> Result<Option<Record>> {
        let mut rec = [0u8; 16];
        match self.inner.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // Distinguish clean EOF (no bytes at all) from a torn
                // header: read_exact leaves the buffer contents
                // unspecified on failure, so probe with a 1-byte read.
                return Ok(None);
            }
            Err(_) => return Err(WireError::Truncated),
        }
        let u32_at = |range: std::ops::Range<usize>| {
            let bytes: [u8; 4] = crate::bytes::array(&rec, range);
            if self.big_endian {
                u32::from_be_bytes(bytes)
            } else {
                u32::from_le_bytes(bytes)
            }
        };
        let incl_len = u32_at(8..12);
        if incl_len > self.snaplen.max(DEFAULT_SNAPLEN) {
            return Err(WireError::Malformed);
        }
        let mut data = vec![0u8; incl_len as usize];
        self.inner
            .read_exact(&mut data)
            .map_err(|_| WireError::Truncated)?;
        Ok(Some(Record {
            ts_sec: u32_at(0..4),
            ts_usec: u32_at(4..8),
            orig_len: u32_at(12..16),
            data,
        }))
    }

    /// Iterates over all remaining records.
    pub fn records(mut self) -> impl Iterator<Item = Result<Record>> {
        std::iter::from_fn(move || self.next_record().transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = Vec::new();
        {
            let mut w = Writer::new(&mut buf, LINKTYPE_RAW).unwrap();
            w.write_packet(100, 5, b"first").unwrap();
            w.write_packet(101, 6, b"second packet").unwrap();
            w.finish().unwrap();
        }
        let r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.linktype(), LINKTYPE_RAW);
        let records: Vec<Record> = r.records().collect::<Result<_>>().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_sec, 100);
        assert_eq!(records[0].data, b"first");
        assert_eq!(records[1].orig_len, 13);
    }

    #[test]
    fn empty_file_yields_no_records() {
        let mut buf = Vec::new();
        Writer::new(&mut buf, LINKTYPE_ETHERNET)
            .unwrap()
            .finish()
            .unwrap();
        let r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.records().count(), 0);
    }

    #[test]
    fn big_endian_file_is_readable() {
        // Hand-build a big-endian file with one 3-byte packet.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        buf.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&3u32.to_be_bytes()); // incl_len
        buf.extend_from_slice(&3u32.to_be_bytes()); // orig_len
        buf.extend_from_slice(b"abc");
        let r = Reader::new(&buf[..]).unwrap();
        let records: Vec<Record> = r.records().collect::<Result<_>>().unwrap();
        assert_eq!(records[0].ts_sec, 7);
        assert_eq!(records[0].data, b"abc");
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert_eq!(Reader::new(&buf[..]).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn truncated_record_reported() {
        let mut buf = Vec::new();
        {
            let mut w = Writer::new(&mut buf, LINKTYPE_RAW).unwrap();
            w.write_packet(1, 0, b"hello").unwrap();
        }
        buf.truncate(buf.len() - 2); // tear the packet body
        let mut r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.next_record().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn snaplen_truncates_long_packets() {
        let mut sink = Vec::new();
        let mut w = Writer::new(&mut sink, LINKTYPE_RAW).unwrap();
        w.snaplen = 4;
        w.write_packet(0, 0, b"longpacket").unwrap();
        w.finish().unwrap();
        let r = Reader::new(&sink[..]).unwrap();
        let rec = r.records().next().unwrap().unwrap();
        assert_eq!(rec.data, b"long");
        assert_eq!(rec.orig_len, 10);
    }
}
