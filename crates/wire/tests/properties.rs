//! Property-based roundtrip tests for the wire formats.

use mt_types::Ipv4;
use mt_wire::ipfix::{self, IpfixFlow};
use mt_wire::pcap;
use mt_wire::{ipv4, tcp, udp, IpProtocol};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4> {
    any::<u32>().prop_map(Ipv4)
}

fn arb_flow() -> impl Strategy<Value = IpfixFlow> {
    (
        arb_addr(),
        arb_addr(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        0u8..=0x3f,
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(
            |(src, dst, src_port, dst_port, protocol, tcp_flags, packets, octets, start_secs)| {
                IpfixFlow {
                    src,
                    dst,
                    src_port,
                    dst_port,
                    protocol,
                    tcp_flags,
                    packets,
                    octets,
                    start_secs,
                }
            },
        )
}

/// A fixed marker record used to prove entry contents survive rollbacks.
fn arb_sentinel() -> IpfixFlow {
    IpfixFlow {
        src: Ipv4(0xdead_beef),
        dst: Ipv4(0xfeed_f00d),
        src_port: 1,
        dst_port: 2,
        protocol: 6,
        tcp_flags: 0x12,
        packets: 7,
        octets: 700,
        start_secs: 9,
    }
}

proptest! {
    #[test]
    fn ipv4_emit_parse_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let repr = ipv4::Repr {
            src,
            dst,
            protocol: IpProtocol::Udp,
            payload_len: payload.len(),
            ttl,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut packet = ipv4::Packet::new_unchecked(&mut buf);
        repr.emit(&mut packet);
        packet.payload_mut().copy_from_slice(&payload);
        // Payload writes do not disturb the header checksum.
        let packet = ipv4::Packet::new_checked(&buf[..]).unwrap();
        prop_assert!(packet.verify_checksum());
        prop_assert_eq!(ipv4::Repr::parse(&packet).unwrap(), repr);
        prop_assert_eq!(packet.payload(), &payload[..]);
    }

    #[test]
    fn tcp_emit_parse_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        flag_bits in 0u8..=0x3f,
        mss in proptest::option::of(500u16..=9000),
    ) {
        let repr = tcp::Repr {
            src_port,
            dst_port,
            seq,
            ack,
            flags: tcp::Flags(flag_bits),
            window,
            mss,
            payload_len: 0,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        let mut seg = tcp::Segment::new_unchecked(&mut buf);
        repr.emit(&mut seg, src, dst);
        let seg = tcp::Segment::new_checked(&buf[..]).unwrap();
        prop_assert!(seg.verify_checksum(src, dst));
        prop_assert_eq!(tcp::Repr::parse(&seg, src, dst).unwrap(), repr);
    }

    #[test]
    fn udp_emit_parse_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let repr = udp::Repr { src_port, dst_port, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        buf[udp::HEADER_LEN..].copy_from_slice(&payload);
        let mut dg = udp::Datagram::new_unchecked(&mut buf);
        repr.emit(&mut dg, src, dst);
        let dg = udp::Datagram::new_checked(&buf[..]).unwrap();
        prop_assert!(dg.verify_checksum(src, dst));
        prop_assert_eq!(udp::Repr::parse(&dg, src, dst).unwrap(), repr);
    }

    /// RFC 768: the checksum field value `0x0000` is reserved to mean
    /// "no checksum computed", so an emitter whose one's-complement sum
    /// comes out zero must transmit `0xffff` instead. Whatever the
    /// inputs, the emitted field is never zero — and always verifies.
    #[test]
    fn udp_emitted_checksum_is_never_the_no_checksum_sentinel(
        src in arb_addr(),
        dst in arb_addr(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let repr = udp::Repr { src_port, dst_port, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        buf[udp::HEADER_LEN..].copy_from_slice(&payload);
        let mut dg = udp::Datagram::new_unchecked(&mut buf);
        repr.emit(&mut dg, src, dst);
        let field = u16::from_be_bytes([buf[6], buf[7]]);
        prop_assert_ne!(field, 0, "0x0000 on the wire would read as 'no checksum'");
        let dg = udp::Datagram::new_checked(&buf[..]).unwrap();
        prop_assert!(dg.verify_checksum(src, dst));
    }

    /// RFC 768's receive-side special case: a stored checksum of
    /// `0x0000` means the sender computed none, and must be accepted —
    /// for any ports/addresses, not just all-zero buffers.
    #[test]
    fn udp_zero_checksum_means_unchecksummed_and_is_accepted(
        src in arb_addr(),
        dst in arb_addr(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let repr = udp::Repr { src_port, dst_port, payload_len: payload.len() };
        let mut buf = vec![0u8; repr.buffer_len()];
        buf[udp::HEADER_LEN..].copy_from_slice(&payload);
        let mut dg = udp::Datagram::new_unchecked(&mut buf);
        repr.emit(&mut dg, src, dst);
        // Blank the checksum field: "not computed".
        buf[6] = 0;
        buf[7] = 0;
        let dg = udp::Datagram::new_checked(&buf[..]).unwrap();
        prop_assert!(dg.verify_checksum(src, dst), "zero checksum is 'none', not 'invalid'");
        prop_assert_eq!(udp::Repr::parse(&dg, src, dst).unwrap(), repr);
    }

    #[test]
    fn ipfix_roundtrip_any_chunking(
        flows in proptest::collection::vec(arb_flow(), 0..50),
        chunk in 1usize..=16,
    ) {
        let mut seq = 0u32;
        let msgs = ipfix::encode_messages(&flows, 123, 9, &mut seq, chunk);
        prop_assert_eq!(seq as usize, flows.len());
        let mut collector = ipfix::Collector::new();
        let mut out = Vec::new();
        for m in &msgs {
            collector.decode_message(m, &mut out).unwrap();
        }
        prop_assert_eq!(out, flows);
    }

    #[test]
    fn ipfix_decoder_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut collector = ipfix::Collector::new();
        let _ = collector.decode_message(&noise, &mut Vec::new());
    }

    #[test]
    fn ipfix_datagram_roundtrip_any_packing(
        flows in proptest::collection::vec(arb_flow(), 0..50),
        chunk in 1usize..=16,
    ) {
        // A datagram holding all the messages of an export batch decodes
        // to exactly the input, whatever the per-message record packing.
        let mut seq = 0u32;
        let msgs = ipfix::encode_messages(&flows, 123, 9, &mut seq, chunk);
        let expect_msgs = msgs.len() as u64;
        let datagram: Vec<u8> = msgs.into_iter().flatten().collect();
        let mut collector = ipfix::Collector::new();
        let mut out = Vec::new();
        prop_assert_eq!(collector.decode_datagram(&datagram, &mut out).unwrap(), expect_msgs);
        prop_assert_eq!(out, flows);
    }

    #[test]
    fn ipfix_datagram_all_or_nothing_under_mutation(
        flows in proptest::collection::vec(arb_flow(), 1..20),
        mutations in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..12),
        truncate_by in 0usize..40,
        extend_by in 0usize..20,
    ) {
        // Start from a valid multi-message datagram; flip bytes, tear the
        // tail, append garbage. Whatever happens, decode_datagram must
        // not panic, and on Err the output buffer must be exactly what it
        // was on entry — no partial datagram ever leaks records.
        let mut seq = 0u32;
        let mut datagram: Vec<u8> = ipfix::encode_messages(&flows, 7, 3, &mut seq, 4)
            .into_iter()
            .flatten()
            .collect();
        for (pos, val) in &mutations {
            let idx = *pos as usize % datagram.len();
            datagram[idx] ^= *val;
        }
        let keep = datagram.len().saturating_sub(truncate_by);
        datagram.truncate(keep);
        datagram.extend(std::iter::repeat_n(0xAAu8, extend_by));
        let mut collector = ipfix::Collector::new();
        let sentinel = arb_sentinel();
        let mut out = vec![sentinel];
        if collector.decode_datagram(&datagram, &mut out).is_err() {
            prop_assert_eq!(out, vec![sentinel], "Err must roll the buffer back");
        } else {
            prop_assert_eq!(out[0], sentinel, "entry records are never touched");
        }
        // The session survives: a clean datagram decodes afterwards.
        let mut seq2 = 0u32;
        let clean: Vec<u8> = ipfix::encode_messages(&flows, 8, 3, &mut seq2, 4)
            .into_iter()
            .flatten()
            .collect();
        let mut out2 = Vec::new();
        prop_assert!(collector.decode_datagram(&clean, &mut out2).is_ok());
        prop_assert_eq!(out2, flows);
    }

    #[test]
    fn ipfix_decoder_never_panics_on_mutated_messages(
        flows in proptest::collection::vec(arb_flow(), 1..20),
        mutations in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..12),
        truncate_by in 0usize..40,
    ) {
        // Start from a valid message, flip arbitrary bytes and optionally
        // tear the tail off. Decoding may fail (header damage) or skip
        // sets (body damage), but must never panic — and whatever records
        // do come out must look structurally sane.
        let mut seq = 0u32;
        let mut msg = ipfix::encode_messages(&flows, 7, 3, &mut seq, 8).remove(0);
        for (pos, val) in &mutations {
            let idx = *pos as usize % msg.len();
            msg[idx] ^= *val;
        }
        let keep = msg.len().saturating_sub(truncate_by).max(1);
        msg.truncate(keep);
        let mut collector = ipfix::Collector::new();
        let mut out = Vec::new();
        let _ = collector.decode_message(&msg, &mut out);
        // Counters only ever grow; a second decode of the same bytes must
        // also be panic-free on the now-warm template session.
        let _ = collector.decode_message(&msg, &mut Vec::new());
    }

    #[test]
    fn ipfix_body_damage_is_not_fatal(
        flows in proptest::collection::vec(arb_flow(), 1..20),
        mutations in proptest::collection::vec((any::<u16>(), 1u8..=255), 1..8),
    ) {
        // Damage strictly inside the body (past the 16-byte header) with
        // the declared length left intact: the collector must always
        // accept the message at the framing level (Ok), whatever it had
        // to skip inside.
        let mut seq = 0u32;
        let mut msg = ipfix::encode_messages(&flows, 7, 3, &mut seq, 8).remove(0);
        let body_len = msg.len() - 16;
        for (pos, val) in &mutations {
            let idx = 16 + *pos as usize % body_len;
            // Never touch bytes 2..4 (there are none in range; indices
            // start at 16) so the declared message length stays valid.
            msg[idx] ^= *val;
        }
        let mut collector = ipfix::Collector::new();
        let mut out = Vec::new();
        prop_assert!(collector.decode_message(&msg, &mut out).is_ok());
    }

    #[test]
    fn pcap_roundtrip(
        packets in proptest::collection::vec(
            (any::<u32>(), 0u32..1_000_000, proptest::collection::vec(any::<u8>(), 0..80)),
            0..20,
        ),
    ) {
        let mut file = Vec::new();
        {
            let mut w = pcap::Writer::new(&mut file, pcap::LINKTYPE_RAW).unwrap();
            for (sec, usec, data) in &packets {
                w.write_packet(*sec, *usec, data).unwrap();
            }
            w.finish().unwrap();
        }
        let r = pcap::Reader::new(&file[..]).unwrap();
        let records: Vec<pcap::Record> = r.records().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(records.len(), packets.len());
        for (rec, (sec, usec, data)) in records.iter().zip(&packets) {
            prop_assert_eq!(rec.ts_sec, *sec);
            prop_assert_eq!(rec.ts_usec, *usec);
            prop_assert_eq!(&rec.data, data);
        }
    }

    #[test]
    fn pcap_reader_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..100)) {
        if let Ok(mut r) = pcap::Reader::new(&noise[..]) {
            while let Ok(Some(_)) = r.next_record() {}
        }
    }

    #[test]
    fn ipv4_checked_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..60)) {
        if let Ok(p) = ipv4::Packet::new_checked(&noise[..]) {
            let _ = p.payload();
            let _ = p.verify_checksum();
        }
    }

    #[test]
    fn tcp_checked_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..60)) {
        if let Ok(s) = tcp::Segment::new_checked(&noise[..]) {
            let _ = s.payload();
            let _ = s.options();
        }
    }
}
