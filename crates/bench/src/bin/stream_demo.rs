//! `stream-demo`: continuous operation of the meta-telescope, end to
//! end. Three simulated days of vantage-point traffic are exported as
//! per-exporter RFC 7011 IPFIX byte streams, interleaved in
//! transport-sized chunks, and fed through the `mt-stream` stack
//! (collector sessions → watermark windows → backpressure-bounded ingest
//! → per-window pipeline). One chunk of garbage and one
//! past-the-lateness straggler are injected on purpose, so the decode
//! and drop counters have something to show.
//!
//! Run with `cargo run --release --bin stream-demo [seed]`. Optional
//! flags write the machine-readable health artifacts (see
//! `DESIGN.md` §"Observability"):
//!
//! - `--health-json PATH` — the final [`mt_stream::HealthSnapshot`] as
//!   JSON, then read back, re-parsed and re-validated from disk (the
//!   demo exits non-zero if the document fails its own invariants or
//!   disagrees with the metrics registry).
//! - `--metrics-text PATH` — the full registry in Prometheus text
//!   exposition format.

use mt_bench::harness::{Profile, World};
use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_flow::FlowRecord;
use mt_stream::{HealthSnapshot, OverflowPolicy, StreamConfig, StreamOutput, StreamService};
use mt_traffic::{generate_day, CaptureSet};
use mt_types::{Day, SimDuration};
use std::collections::HashMap;

const DAYS: u32 = 3;
/// TCP-segment-sized chunks, the fragmentation a live collector sees.
const CHUNK: usize = 1460;

struct Args {
    seed: u64,
    health_json: Option<String>,
    metrics_text: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        health_json: None,
        metrics_text: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--health-json" => args.health_json = Some(it.next().expect("--health-json PATH")),
            "--metrics-text" => args.metrics_text = Some(it.next().expect("--metrics-text PATH")),
            s => args.seed = s.parse().expect("seed must be an integer"),
        }
    }
    args
}

/// Re-reads the health document from disk and checks that what a
/// downstream consumer would see is internally consistent and agrees
/// with the metrics registry. Returns an error string on any mismatch.
fn validate_health_file(path: &str, out: &StreamOutput) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let parsed: HealthSnapshot =
        serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e:?}"))?;
    parsed.check_invariants()?;
    let original = serde_json::to_string(&out.health).map_err(|e| format!("{e:?}"))?;
    let reparsed = serde_json::to_string(&parsed).map_err(|e| format!("{e:?}"))?;
    if original != reparsed {
        return Err("health document did not round-trip through disk".into());
    }
    // The registry's exposition must tell the same story as the
    // document: spot-check the load-bearing totals.
    let snap = out.registry.snapshot();
    let checks: [(&str, u64); 5] = [
        ("mt_queue_pushed_total", parsed.queue.pushed),
        ("mt_window_on_time_total", parsed.on_time),
        ("mt_window_late_total", parsed.late),
        ("mt_window_dropped_total", parsed.dropped_late),
        ("mt_window_closed_total", parsed.windows_closed),
    ];
    for (name, want) in checks {
        match snap.scalar(name, &[]) {
            Some(got) if got == want => {}
            got => {
                return Err(format!(
                    "registry {name} = {got:?}, health document says {want}"
                ))
            }
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let seed = args.seed;
    let world = World::new(Profile::Small, seed);
    let rate = world.sampling_rate();
    let ingest_threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    println!(
        "stream-demo: {} world, seed {seed}, {DAYS} days, {ingest_threads} ingest threads",
        world.profile.name()
    );

    let net = &world.net;
    let mut svc = StreamService::start(
        StreamConfig {
            ingest_threads,
            sampling_rate: rate,
            overflow: OverflowPolicy::Block,
            allowed_lateness: SimDuration::hours(2),
            ..StreamConfig::default()
        },
        |day| net.rib(day),
    );

    // Per-exporter running IPFIX sequence counters, as real exporters keep.
    let mut sequences: HashMap<String, u32> = HashMap::new();
    let mut straggler: Option<FlowRecord> = None;

    for d in 0..DAYS {
        let day = Day(d);
        eprintln!("[stream-demo] generating and streaming {day} ...");
        let mut capture = CaptureSet::new(net, day, &world.spoof, DEFAULT_SIZE_THRESHOLD, false);
        capture.retain_all_records();
        generate_day(net, &world.traffic, day, &mut capture);

        // Export each vantage point's day as IPFIX bytes.
        let streams: Vec<(String, Vec<u8>)> = capture
            .vantages
            .iter()
            .map(|vo| {
                if d == 0 && straggler.is_none() {
                    straggler = vo.records.as_ref().and_then(|r| r.first().copied());
                }
                let seq = sequences.entry(vo.vp.code.clone()).or_insert(0);
                let bytes = vo
                    .export_ipfix(d * 86_400, seq, 64)
                    .expect("records retained")
                    .into_iter()
                    .flatten()
                    .collect();
                (vo.vp.code.clone(), bytes)
            })
            .collect();

        // Interleave the exporters in transport-sized chunks.
        let mut cursors = vec![0usize; streams.len()];
        loop {
            let mut progressed = false;
            for (i, (name, bytes)) in streams.iter().enumerate() {
                if cursors[i] < bytes.len() {
                    let end = (cursors[i] + CHUNK).min(bytes.len());
                    svc.push_chunk(name, &bytes[cursors[i]..end]);
                    cursors[i] = end;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        if d == 0 {
            // A link hiccup: 64 bytes of garbage mid-stream. The session
            // resynchronizes and counts the damage.
            svc.push_chunk("CE1", &[0xA5; 64]);
        }
    }

    // A straggler from day 0, long past the allowed lateness: its window
    // has closed, so the gate drops and counts it.
    if let Some(r) = straggler {
        let flows = [r.to_ipfix()];
        let seq = sequences.entry("CE1".to_owned()).or_insert(0);
        for msg in mt_wire::ipfix::encode_messages(&flows, DAYS * 86_400, 1, seq, 1) {
            svc.push_chunk("CE1", &msg);
        }
    }

    let out = svc.finish();

    println!("\nper-exporter sessions:");
    println!(
        "  {:<6} {:>10} {:>8} {:>9} {:>7} {:>6} {:>7}",
        "code", "bytes", "msgs", "flows", "errors", "late", "dropped"
    );
    for e in &out.exporters {
        println!(
            "  {:<6} {:>10} {:>8} {:>9} {:>7} {:>6} {:>7}",
            e.name, e.bytes, e.messages, e.flows, e.decode_errors, e.late, e.dropped
        );
    }

    println!("\nwindows (per-day pipeline runs):");
    for (w, c) in out.windows.iter().zip(&out.combined) {
        println!(
            "  {}: {} records -> dark {} unclean {} gray {} | combined over {} day(s): dark {}",
            w.day,
            w.records,
            w.result.dark.len(),
            w.result.unclean.len(),
            w.result.gray.len(),
            c.days,
            c.result.dark.len(),
        );
    }
    if let Some(c) = out.combined.last() {
        println!(
            "\nfinal combined meta-telescope: {} /24 blocks over {} day(s) from {}",
            c.result.dark.len(),
            c.days,
            c.first
        );
    }

    println!(
        "\ngate: {} on time, {} late (accepted), {} dropped late, {} shed by backpressure",
        out.on_time, out.late, out.dropped_late, out.dropped_backpressure
    );
    let q = out.queue;
    println!(
        "queue: {} pushed, {} popped, {} dropped, high-water mark {}",
        q.pushed, q.popped, q.dropped, q.high_water_mark
    );

    // The health document's identities hold by construction; failing
    // here means the accounting itself broke, not the demo.
    if let Err(e) = out.health.check_invariants() {
        eprintln!("stream-demo: health invariants violated: {e}");
        std::process::exit(1);
    }

    if let Some(path) = &args.metrics_text {
        let text = mt_obs::render_prometheus_text(&out.registry.snapshot());
        std::fs::write(path, &text).expect("write metrics text");
        println!(
            "wrote Prometheus exposition ({} lines) to {path}",
            text.lines().count()
        );
    }
    if let Some(path) = &args.health_json {
        let json = serde_json::to_string(&out.health).expect("health serializes");
        std::fs::write(path, &json).expect("write health json");
        match validate_health_file(path, &out) {
            Ok(()) => println!("wrote health document to {path} (re-validated from disk)"),
            Err(e) => {
                eprintln!("stream-demo: health document validation failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
