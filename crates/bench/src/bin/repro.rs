//! `repro` — regenerates every table and figure of the paper from the
//! simulated scenario.
//!
//! ```text
//! repro [--profile small|paper|full] [--seed N] [--out DIR] [all | <ids>...]
//!
//!   ids: table1 table2 table3 fig2 table4 fig3 table5 table6 fig4
//!        fig5 fig6 table7 fig7 fig8 fig9 fig10 fig11 fig12 baseline
//! ```
//!
//! Results are printed and written under `--out` (default `results/`):
//! `<id>.txt` per exhibit plus any PPM images, and `summary.json` with
//! the machine-readable scenario facts.

use mt_bench::experiments::{self, ALL_IDS};
use mt_bench::harness::{simulate, Needs, Profile, World};
use std::path::PathBuf;

fn main() {
    let mut profile = Profile::Small;
    let mut seed = 42u64;
    let mut out = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                let v = args.next().expect("--profile needs a value");
                profile = Profile::parse(&v)
                    .unwrap_or_else(|| panic!("unknown profile {v:?} (small|paper|full)"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--out" => out = PathBuf::from(args.next().expect("--out needs a value")),
            "--help" | "-h" => {
                println!(
                    "repro [--profile small|paper|full] [--seed N] [--out DIR] [all | ids...]"
                );
                println!("ids: {} baseline monitor", ALL_IDS.join(" "));
                return;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
        ids.push("baseline".to_owned());
        ids.push("monitor".to_owned());
    }

    // Derive what the requested exhibits need.
    let mut needs = Needs {
        days: 1,
        vp_day0: true,
        ..Needs::default()
    };
    for id in &ids {
        match id.as_str() {
            "table2" | "table5" => {
                needs.telescopes = true;
                needs.days = needs.days.max(7);
            }
            "table3" => needs.isp_day0 = true,
            "table4" | "fig9" => {
                needs.cumulative = true;
                needs.days = needs.days.max(7);
            }
            "fig3" => {
                needs.cumulative = true;
                needs.days = needs.days.max(7);
            }
            "fig8" => needs.days = needs.days.max(7),
            "fig10" => needs.records_day0 = true,
            "fig11" | "fig12" | "table5_meta" => needs.dark_ports_day0 = true,
            _ => {}
        }
    }
    if ids.iter().any(|i| i == "table5") {
        needs.dark_ports_day0 = true;
    }

    eprintln!(
        "[repro] profile={} seed={seed} days={} exhibits={}",
        profile.name(),
        needs.days,
        ids.join(",")
    );
    let t0 = std::time::Instant::now();
    let world = World::new(profile, seed);
    eprintln!(
        "[repro] world: {} ASes, {} announced /24s ({} dark / {} active)",
        world.net.ases.len(),
        world.net.announced_blocks(),
        world.net.dark_truth.len(),
        world.net.active_truth.len()
    );
    let data = simulate(&world, needs);
    eprintln!("[repro] simulation done in {:?}", t0.elapsed());

    std::fs::create_dir_all(&out).expect("create output directory");
    let mut summaries = serde_json::Map::new();
    summaries.insert("profile".into(), profile.name().into());
    summaries.insert("seed".into(), seed.into());
    summaries.insert(
        "announced_blocks".into(),
        world.net.announced_blocks().into(),
    );
    summaries.insert(
        "dark_truth".into(),
        (world.net.dark_truth.len() as u64).into(),
    );

    for id in &ids {
        let report = if id == "baseline" {
            experiments::baseline_report(&world, &data)
        } else if id == "monitor" {
            experiments::monitor_report(&world, &data)
        } else {
            match experiments::run(id, &world, &data) {
                Some(r) => r,
                None => {
                    eprintln!("[repro] unknown exhibit {id}, skipping");
                    continue;
                }
            }
        };
        println!("================================================================");
        println!("{} — {}", report.id, report.title);
        println!("================================================================");
        println!("{}", report.body);
        let txt = out.join(format!("{}.txt", report.id));
        std::fs::write(&txt, format!("{}\n\n{}", report.title, report.body)).expect("write report");
        for (name, bytes) in &report.files {
            std::fs::write(out.join(name), bytes).expect("write side file");
        }
        summaries.insert(report.id.clone(), report.title.clone().into());
    }
    std::fs::write(
        out.join("summary.json"),
        serde_json::to_string_pretty(&serde_json::Value::Object(summaries)).unwrap(),
    )
    .expect("write summary");
    eprintln!("[repro] wrote {} (total {:?})", out.display(), t0.elapsed());
}
