//! One function per table/figure of the paper, regenerating it from a
//! simulated scenario. See DESIGN.md §4 for the experiment index.

use crate::harness::{SimData, World, SERIES};
use crate::report::{pct, row, Report};
use mt_core::render::HilbertMap;
use mt_core::{analysis, baseline, classifier, eval, pipeline};
use mt_flow::sampling::thin_records;
use mt_flow::TrafficStats;
use mt_telescope::{port_overlap, PortRanking, TelescopeWeekStats};
use mt_types::{Block24Set, Continent, Day, NetworkType, Prefix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "table1", "table2", "table3", "fig2", "table4", "fig3", "table5", "table6", "fig4", "fig5",
    "fig6", "table7", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
];

/// Runs one experiment by id.
pub fn run(id: &str, world: &World, data: &SimData) -> Option<Report> {
    match id {
        "table1" => Some(table1(world, data)),
        "table2" => Some(table2(world, data)),
        "table3" => Some(table3(world, data)),
        "fig2" => Some(fig2(world, data)),
        "table4" => Some(table4(world, data)),
        "fig3" => Some(fig3(world, data)),
        "table5" => Some(table5(world, data)),
        "table6" => Some(table6(world, data)),
        "fig4" => Some(fig4(world, data)),
        "fig5" => Some(fig5(world, data)),
        "fig6" => Some(fig6(world, data)),
        "table7" => Some(table7(world, data)),
        "fig7" => Some(fig7(world, data)),
        "fig8" => Some(fig8(world, data)),
        "fig9" => Some(fig9(world, data)),
        "fig10" => Some(fig10(world, data)),
        "fig11" => Some(fig11(world, data)),
        "fig12" => Some(fig12(world, data)),
        _ => None,
    }
}

fn day0_result<'a>(data: &'a SimData, code: &str) -> &'a pipeline::PipelineResult {
    data.day0_results
        .iter()
        .find(|(c, _)| c == code)
        .map(|(_, r)| r)
        .unwrap_or_else(|| panic!("day-0 result for {code} missing (needs.vp_day0)"))
}

/// Table 1 — IXP roster and basic statistics.
fn table1(world: &World, data: &SimData) -> Report {
    let mut r = Report::new("table1", "Table 1: IXPs — basic statistics");
    r.line(row(
        &[
            "IXP".into(),
            "Region".into(),
            "Members".into(),
            "Rate 1:N".into(),
            "dstVisASes".into(),
            "Sampled flows (day 0)".into(),
        ],
        12,
    ));
    for vp in &world.net.vantage_points {
        let flows = data
            .day0_flows
            .get(&vp.code)
            .map(|f| f.to_string())
            .unwrap_or_else(|| "-".into());
        r.line(row(
            &[
                vp.code.clone(),
                vp.region.abbrev().into(),
                vp.members.to_string(),
                vp.sampling_rate.to_string(),
                vp.visible_dst_count().to_string(),
                flows,
            ],
            12,
        ));
    }
    r
}

/// Table 2 — operational telescope statistics over the window.
fn table2(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "table2",
        "Table 2: Operational telescopes — basic statistics",
    );
    r.line(row(
        &[
            "Code".into(),
            "Size /24s".into(),
            "Daily /24 pkts".into(),
            "TCP share".into(),
            "Avg TCP size".into(),
        ],
        14,
    ));
    for (i, t) in world.net.telescopes.iter().enumerate() {
        let week = TelescopeWeekStats::new(&t.code, t.num_blocks, data.telescope_days[i].clone());
        r.line(row(
            &[
                t.code.clone(),
                t.num_blocks.to_string(),
                format!("{:.0}", week.daily_pkts_per_block()),
                pct(week.tcp_share()),
                format!("{:.2} B", week.avg_tcp_size().unwrap_or(0.0)),
            ],
            14,
        ));
    }
    r.blank();
    r.line("(volumes are 1:1000 of the paper's absolute numbers; see EXPERIMENTS.md)");
    r
}

/// Table 3 — classifier calibration sweep on the ISP ground truth.
fn table3(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "table3",
        "Table 3: Tuning the packet-size fingerprint (median vs average)",
    );
    let stats = data.isp_stats.as_ref().expect("needs.isp_day0");
    let isp_as = data.isp_as.expect("needs.isp_day0");
    let scope: Block24Set = world
        .net
        .announcements
        .iter()
        .filter(|a| a.as_idx == isp_as)
        .flat_map(|a| a.prefix.blocks24())
        .collect();
    let labels = classifier::CalibrationLabels::derive(stats, &scope, 2_000);
    r.line(format!(
        "ISP ground truth: {} receiving /24s, {} labeled dark, {} labeled active",
        labels.receiving,
        labels.dark.len(),
        labels.active.len()
    ));
    r.blank();
    r.line(row(
        &[
            "Feature".into(),
            "Thresh".into(),
            "FPR".into(),
            "FNR".into(),
            "TPR".into(),
            "TNR".into(),
            "F1".into(),
        ],
        10,
    ));
    let rows = classifier::sweep(stats, &labels, &[40, 42, 44, 46]);
    for sr in &rows {
        let m = sr.matrix;
        r.line(row(
            &[
                match sr.feature {
                    classifier::ClassifierFeature::Median => "median".into(),
                    classifier::ClassifierFeature::Average => "average".into(),
                },
                format!("{} B", sr.threshold),
                pct(m.fpr()),
                pct(m.fnr()),
                pct(m.tpr()),
                pct(m.tnr()),
                pct(m.f1()),
            ],
            10,
        ));
    }
    let best = classifier::pick_best(&rows).unwrap();
    r.blank();
    r.line(format!(
        "winner: {:?} at {} B (the paper picks average/44 for its lower FPR)",
        best.feature, best.threshold
    ));
    r
}

/// Figure 2 — the inference funnel.
fn fig2(_world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig2",
        "Figure 2: Inference pipeline funnel (all IXPs, day 0)",
    );
    let all = day0_result(data, "All");
    let f = &all.funnel;
    for (label, v) in [
        ("destination /24s seen", f.seen()),
        ("after 1. TCP traffic", f.after_tcp()),
        ("after 2. average <= 44 bytes", f.after_avg()),
        ("after 3. clean source remains", f.after_origin()),
        ("after 4. not private/reserved", f.after_special()),
        ("after 5. globally routed", f.after_routed()),
        ("after 6. volume cap", f.after_volume()),
    ] {
        r.line(format!("{:>32}: {v}", label));
    }
    r.blank();
    r.line(format!(
        "{:>32}: {}",
        "darknets (meta-telescope)",
        all.dark.len()
    ));
    r.line(format!("{:>32}: {}", "unclean darknets", all.unclean.len()));
    r.line(format!("{:>32}: {}", "graynets", all.gray.len()));
    r
}

/// Table 4 — meta-telescope coverage of the operational telescopes.
fn table4(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "table4",
        "Table 4: Coverage of the operational telescopes (1 vs 7 days; CE1 vs All)",
    );
    let final_days = data.cumulative.last().map(|p| p.days).unwrap_or(1);
    r.line(row(
        &[
            "Code".into(),
            "Size".into(),
            "1d CE1".into(),
            "1d All".into(),
            format!("{final_days}d CE1"),
            format!("{final_days}d All"),
        ],
        10,
    ));
    for t in &world.net.telescopes {
        let mut cells = vec![t.code.clone(), t.num_blocks.to_string()];
        for days in [1, final_days] {
            for label in ["CE1", "All"] {
                let dark = data
                    .window_darks
                    .get(&(label.to_owned(), days, true))
                    .expect("needs.cumulative");
                let cov = eval::TelescopeCoverage::measure(dark, t, &world.net, Day(0), days);
                cells.push(cov.inferred.to_string());
            }
        }
        // Reorder: collected as (1d CE1, 1d All, Nd CE1, Nd All) already.
        r.line(row(&cells, 10));
    }
    r.blank();
    r.line("(windows use the Section 7.2 spoofing tolerance; volume-cap ablation:");
    r.line(" rerun with --volume-threshold to see telescope blocks reappear)");
    r
}

/// Figure 3 — Hilbert curve of the region containing a telescope.
fn fig3(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig3",
        "Figure 3: Hilbert map of the address region containing a telescope",
    );
    let final_days = data.cumulative.last().map(|p| p.days).unwrap_or(1);
    let dark = data
        .window_darks
        .get(&("All".to_owned(), final_days, true))
        .expect("needs.cumulative");
    let t = &world.net.telescopes[0];
    // The covering prefix of the telescope's dedicated announcement.
    let covering = world
        .net
        .announcements
        .iter()
        .find(|a| a.telescope == Some(0))
        .map(|a| a.prefix)
        .expect("telescope announcement exists");
    let map = HilbertMap::new(covering);
    let boundary: Block24Set = t.blocks().collect();
    let inside = dark.intersection_len(&boundary);
    let outside = dark.count_in_prefix(covering) - inside;
    r.line(format!(
        "covering prefix {covering}: {inside} inferred /24s inside the telescope, {outside} outside"
    ));
    r.blank();
    r.line("legend: '@' inferred+telescope, '#' inferred, '+' telescope only, '·' other");
    r.line(map.ascii(dark, Some(&boundary)));
    r.files.push((
        "fig3_telescope_region.ppm".to_owned(),
        map.ppm(dark, Some(&boundary)),
    ));
    r
}

/// Table 5 — top-10 TCP ports per telescope plus the meta-telescope.
fn table5(world: &World, data: &SimData) -> Report {
    let mut r = Report::new("table5", "Table 5: Top 10 TCP ports by site");
    let mut rankings = Vec::new();
    for (i, t) in world.net.telescopes.iter().enumerate() {
        let week = TelescopeWeekStats::new(&t.code, t.num_blocks, data.telescope_days[i].clone());
        rankings.push(PortRanking::top_n(&t.code, &week.port_counts(), 10));
    }
    if let Some(matrix) = &data.port_matrix {
        let mut counts = std::collections::HashMap::new();
        for (&(port, _), &pkts) in &matrix.by_region {
            *counts.entry(port).or_default() += pkts;
        }
        rankings.push(PortRanking::top_n("meta-telescope", &counts, 10));
    }
    let mut header = vec!["Rank".to_owned()];
    header.extend(rankings.iter().map(|rk| rk.label.clone()));
    r.line(row(&header, 16));
    for rank in 0..10 {
        let mut cells = vec![format!("#{}", rank + 1)];
        for rk in &rankings {
            cells.push(
                rk.ranked
                    .get(rank)
                    .map(|&(p, _)| p.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        r.line(row(&cells, 16));
    }
    if rankings.len() >= 2 {
        r.blank();
        let meta = rankings.last().unwrap();
        for rk in &rankings[..rankings.len() - 1] {
            r.line(format!(
                "overlap {} vs meta-telescope: {}/10",
                rk.label,
                port_overlap(rk, meta)
            ));
        }
    }
    r
}

/// Table 6 — inferred prefixes per vantage point (after aux scrubbing).
fn table6(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "table6",
        "Table 6: Meta-telescope prefixes per vantage point (day 0, aux-scrubbed)",
    );
    r.line(row(
        &[
            "IXP".into(),
            "#prefixes".into(),
            "#ASes".into(),
            "#Countries".into(),
            "FP vs truth".into(),
        ],
        12,
    ));
    for (code, result) in &data.day0_results {
        let scrubbed = eval::scrub(&result.dark, &world.aux);
        let s = analysis::summarize(code, &scrubbed, &world.net);
        let gt = eval::GroundTruthReport::evaluate(&scrubbed, &world.net, Day(0), 1);
        r.line(row(
            &[
                code.clone(),
                s.blocks.to_string(),
                s.ases.to_string(),
                s.countries.to_string(),
                pct(1.0 - gt.precision()),
            ],
            12,
        ));
    }
    r
}

/// Figure 4 — world map data: blocks per country.
fn fig4(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig4",
        "Figure 4 (and 13-15): Meta-telescope /24s per country (world-map data)",
    );
    for code in ["CE1", "NA1", "All"] {
        let result = day0_result(data, code);
        let scrubbed = eval::scrub(&result.dark, &world.aux);
        let counts = analysis::by_country(&scrubbed, &world.net);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        r.line(format!(
            "{code}: {} countries, {} blocks — top 12:",
            counts.len(),
            total
        ));
        let line: Vec<String> = counts
            .iter()
            .take(12)
            .map(|(c, n)| format!("{c}={n}"))
            .collect();
        r.line(format!("  {}", line.join(" ")));
    }
    r
}

/// Figure 5 — Hilbert maps of the /8 with the largest inferred dark mass.
fn fig5(_world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig5",
        "Figure 5: Hilbert maps of a /8 with large inferred dark ranges (CE1 / NA1 / All)",
    );
    let all = &day0_result(data, "All").dark;
    // Pick the /8-aligned space with the most inferred dark blocks.
    let mut best: Option<(Prefix, usize)> = None;
    for octet in 1..=223u8 {
        let Ok(prefix) = Prefix::new(mt_types::Ipv4::new(octet, 0, 0, 0), 8) else {
            continue;
        };
        let n = all.count_in_prefix(prefix);
        if best.is_none_or(|(_, b)| n > b) {
            best = Some((prefix, n));
        }
    }
    let (covering, blocks) = best.expect("some /8 has inferred blocks");
    r.line(format!(
        "selected {covering} with {blocks} inferred /24s (All)"
    ));
    let map = HilbertMap::new(covering);
    for code in ["CE1", "NA1", "All"] {
        let dark = &day0_result(data, code).dark;
        r.line(format!(
            "  {code}: density {:.2}% of the /8's /24s inferred dark",
            map.density(dark) * 100.0
        ));
        r.files
            .push((format!("fig5_{code}.ppm"), map.ppm(dark, None)));
    }
    r
}

/// Figure 6 — Hilbert maps of the /8 containing the known telescope.
fn fig6(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig6",
        "Figure 6: Hilbert maps of the /8 containing a known telescope (CE1 / NA1 / All)",
    );
    let t = &world.net.telescopes[0];
    let covering = Prefix::containing(t.first_block.base(), 8);
    let boundary: Block24Set = t.blocks().collect();
    let map = HilbertMap::new(covering);
    r.line(format!(
        "covering {covering}; telescope {} occupies {} /24s",
        t.code, t.num_blocks
    ));
    for code in ["CE1", "NA1", "All"] {
        let dark = &day0_result(data, code).dark;
        let inside = dark.intersection_len(&boundary);
        r.line(format!(
            "  {code}: {inside}/{} telescope /24s inferred; /8 density {:.2}%",
            t.num_blocks,
            map.density(dark) * 100.0
        ));
        r.files
            .push((format!("fig6_{code}.ppm"), map.ppm(dark, Some(&boundary))));
    }
    r
}

/// Table 7 — inferred prefixes per network type and continent.
fn table7(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "table7",
        "Table 7: Meta-telescope /24s per network type and continent (All, scrubbed)",
    );
    let all = day0_result(data, "All");
    let scrubbed = eval::scrub(&all.dark, &world.aux);
    let m = analysis::TypeContinentMatrix::build(&scrubbed, &world.net);
    let mut header = vec!["Region".to_owned(), "Total".to_owned()];
    header.extend(NetworkType::ALL.iter().map(|t| t.label().to_owned()));
    r.line(row(&header, 12));
    let mut all_cells = vec!["All".to_owned(), m.total().to_string()];
    all_cells.extend(
        NetworkType::ALL
            .iter()
            .map(|&t| m.type_total(t).to_string()),
    );
    r.line(row(&all_cells, 12));
    for &c in &Continent::ALL {
        let mut cells = vec![c.abbrev().to_owned(), m.continent_total(c).to_string()];
        cells.extend(NetworkType::ALL.iter().map(|&t| m.get(c, t).to_string()));
        r.line(row(&cells, 12));
    }
    r
}

/// Figure 7 (and 16/17) — prefix-index ECDFs.
fn fig7(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig7",
        "Figure 7 (and 16/17): Prefix index — share of each announcement inferred dark",
    );
    let all = &day0_result(data, "All").dark;
    r.line("per announced prefix length: share of announcements whose dark share exceeds x");
    r.line(row(
        &[
            "len".into(),
            "count".into(),
            ">5%".into(),
            ">10%".into(),
            ">20%".into(),
            ">40%".into(),
            "median".into(),
        ],
        9,
    ));
    for len in 8..=16u8 {
        let shares = analysis::prefix_index(all, &world.net, len);
        if shares.is_empty() {
            continue;
        }
        let exceed = |x: f64| pct(1.0 - analysis::ecdf(&shares, x));
        let median = shares[shares.len() / 2];
        r.line(row(
            &[
                format!("/{len}"),
                shares.len().to_string(),
                exceed(0.05),
                exceed(0.10),
                exceed(0.20),
                exceed(0.40),
                pct(median),
            ],
            9,
        ));
    }
    r.blank();
    r.line("median dark share per network type (Figure 16):");
    let by_type = analysis::share_by_group(all, &world.net, |a| a.network_type);
    for ty in NetworkType::ALL {
        if let Some(shares) = by_type.get(&ty) {
            r.line(format!(
                "  {:<12} {}",
                ty.label(),
                pct(shares[shares.len() / 2])
            ));
        }
    }
    r.blank();
    r.line("median dark share per continent (Figure 17):");
    let by_cont = analysis::share_by_group(all, &world.net, |a| a.continent);
    for c in Continent::ALL {
        if let Some(shares) = by_cont.get(&c) {
            r.line(format!(
                "  {:<12} {}",
                c.abbrev(),
                pct(shares[shares.len() / 2])
            ));
        }
    }
    r
}

/// Figure 8 — daily variability of inferred prefixes.
fn fig8(_world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig8",
        "Figure 8: Daily meta-telescope prefixes (CE1 / NA1 / All)",
    );
    let mut header = vec!["day".to_owned(), "weekday".to_owned()];
    header.extend(SERIES.iter().map(|s| s.to_string()));
    r.line(row(&header, 10));
    for point in &data.daily {
        let mut cells = vec![
            point.day.0.to_string(),
            format!("{:?}", point.day.weekday()),
        ];
        for label in SERIES {
            cells.push(
                point
                    .dark
                    .get(label)
                    .map(|v| v.to_string())
                    .unwrap_or_default(),
            );
        }
        r.line(row(&cells, 10));
    }
    r.blank();
    r.line("(weekend days infer more: offices stop originating traffic)");
    r
}

/// Figure 9 — cumulative windows with and without spoofing tolerance.
fn fig9(_world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig9",
        "Figure 9: Effect of spoofing over consecutive days (strict vs tolerance)",
    );
    let mut header = vec!["window".to_owned()];
    for label in SERIES {
        header.push(format!("{label} strict"));
        header.push(format!("{label}+tol"));
    }
    header.push("tol pkts (All)".to_owned());
    r.line(row(&header, 12));
    for point in &data.cumulative {
        let mut cells = vec![format!("0-{}", point.days - 1)];
        for label in SERIES {
            cells.push(point.strict[label].to_string());
            cells.push(point.tolerant[label].to_string());
        }
        cells.push(point.tolerance["All"].to_string());
        r.line(row(&cells, 12));
    }
    r
}

/// Figure 10 — the sub-sampling sweep.
fn fig10(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig10",
        "Figure 10: Effect of sub-sampling the day-0 flow data (all IXPs)",
    );
    let records = data.records_day0.as_ref().expect("needs.records_day0");
    let rib = world.net.rib(Day(0));
    let pc = pipeline::PipelineConfig::default();
    let rate = world.sampling_rate();
    r.line(row(
        &[
            "factor".into(),
            "flows".into(),
            "packets".into(),
            "#dark".into(),
            "FP share".into(),
        ],
        12,
    ));
    for factor in [1u32, 2, 4, 8, 16, 32, 64, 128, 180, 256] {
        let thinned = thin_records(records, factor, &mut StdRng::seed_from_u64(world.seed));
        let stats = TrafficStats::from_records(&thinned);
        let result = pipeline::run(&stats, &rib, rate * factor, 1, &pc);
        let gt = eval::GroundTruthReport::evaluate(&result.dark, &world.net, Day(0), 1);
        let packets: u64 = thinned.iter().map(|f| f.packets).sum();
        r.line(row(
            &[
                factor.to_string(),
                thinned.len().to_string(),
                packets.to_string(),
                result.dark.len().to_string(),
                if result.dark.is_empty() {
                    "-".into()
                } else {
                    pct(1.0 - gt.precision())
                },
            ],
            12,
        ));
    }
    r.blank();
    r.line("(moderate thinning sheds spoofed single-packet records; heavy thinning");
    r.line(" blinds the inference entirely — the paper's sweet-spot observation)");
    r
}

/// Figure 11 (and 18) — top ports per world region.
fn fig11(_world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig11",
        "Figure 11 (and 18): Port activity per world region (meta-telescope traffic)",
    );
    let m = data.port_matrix.as_ref().expect("needs.dark_ports_day0");
    let ports = m.union_top_ports_by_region(8);
    let mut header = vec!["port".to_owned()];
    header.extend(Continent::ALL.iter().map(|c| c.abbrev().to_owned()));
    r.line("share within each region's meta-telescope traffic:");
    r.line(row(&header, 8));
    for &port in ports.iter().take(16) {
        let mut cells = vec![port.to_string()];
        for c in Continent::ALL {
            let share = m.region_share(port, c);
            cells.push(if share > 0.0005 {
                pct(share)
            } else {
                "-".into()
            });
        }
        r.line(row(&cells, 8));
    }
    r.blank();
    r.line("share relative to ALL meta-telescope traffic (Figure 18):");
    r.line(row(&header, 8));
    for &port in ports.iter().take(16) {
        let mut cells = vec![port.to_string()];
        for c in Continent::ALL {
            let share = m.global_share(port, c);
            cells.push(if share > 0.0005 {
                pct(share)
            } else {
                "-".into()
            });
        }
        r.line(row(&cells, 8));
    }
    r
}

/// Figure 12 (and 19/20) — top ports per network type.
fn fig12(_world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "fig12",
        "Figure 12 (and 19/20): Port activity per network type",
    );
    let m = data.port_matrix.as_ref().expect("needs.dark_ports_day0");
    let ports = m.union_top_ports_by_region(8);
    let mut header = vec!["port".to_owned()];
    header.extend(NetworkType::ALL.iter().map(|t| t.label().to_owned()));
    r.line(row(&header, 12));
    for &port in ports.iter().take(12) {
        let mut cells = vec![port.to_string()];
        for t in NetworkType::ALL {
            cells.push(pct(m.type_share(port, t)));
        }
        r.line(row(&cells, 12));
    }
    for region in [Continent::NorthAmerica, Continent::Europe] {
        r.blank();
        r.line(format!(
            "network types within {} (Figure {}):",
            region.abbrev(),
            if region == Continent::NorthAmerica {
                20
            } else {
                19
            }
        ));
        r.line(row(&header, 12));
        for &port in ports.iter().take(12) {
            let mut cells = vec![port.to_string()];
            for t in NetworkType::ALL {
                cells.push(pct(m.region_type_share(port, region, t)));
            }
            r.line(row(&cells, 12));
        }
    }
    r
}

/// The operational monitor list: the final (scrubbed, stable) dark set
/// compiled into CIDR prefixes — the "only a small number of subnets
/// needs to be further monitored" product of the paper's Section 5.
pub fn monitor_report(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "monitor",
        "Operational product: aggregated CIDR monitor list (All, scrubbed)",
    );
    let final_days = data.cumulative.last().map(|p| p.days).unwrap_or(1);
    let dark = data
        .window_darks
        .get(&("All".to_owned(), final_days, true))
        .cloned()
        .unwrap_or_else(|| day0_result(data, "All").dark.clone());
    let scrubbed = eval::scrub(&dark, &world.aux);
    let cidrs = scrubbed.aggregate();
    r.line(format!(
        "{} meta-telescope /24s aggregate into {} CIDR prefixes",
        scrubbed.len(),
        cidrs.len()
    ));
    let mut by_len: std::collections::BTreeMap<u8, usize> = std::collections::BTreeMap::new();
    for p in &cidrs {
        *by_len.entry(p.len()).or_default() += 1;
    }
    for (len, n) in &by_len {
        r.line(format!("  /{len}: {n}"));
    }
    let monitored_share = scrubbed.len() as f64 / world.net.announced_blocks().max(1) as f64;
    r.line(format!(
        "monitoring {:.1}% of the announced space suffices (paper: ~5%)",
        monitored_share * 100.0
    ));
    // Ship the list itself as a side file.
    let mut list = String::new();
    for p in &cidrs {
        list.push_str(&p.to_string());
        list.push('\n');
    }
    r.files
        .push(("monitor_list.cidr".to_owned(), list.into_bytes()));
    r
}

/// The origin-only baseline comparison (DESIGN.md ablation; not a paper
/// exhibit but referenced by EXPERIMENTS.md).
pub fn baseline_report(world: &World, data: &SimData) -> Report {
    let mut r = Report::new(
        "baseline",
        "Ablation: origin-only baseline vs the full pipeline (day 0, All)",
    );
    let stats = data.day0_all_stats.as_ref().expect("day-0 stats retained");
    let rib = world.net.rib(Day(0));
    let cmp = baseline::BaselineComparison::run(
        stats,
        &rib,
        world.sampling_rate(),
        1,
        &pipeline::PipelineConfig::default(),
    );
    let gt_base = eval::GroundTruthReport::evaluate(&cmp.baseline, &world.net, Day(0), 1);
    let gt_pipe = eval::GroundTruthReport::evaluate(&cmp.pipeline, &world.net, Day(0), 1);
    r.line(format!(
        "origin-only baseline: {} blocks, precision {}",
        cmp.baseline.len(),
        pct(gt_base.precision())
    ));
    r.line(format!(
        "full pipeline:        {} blocks, precision {}",
        cmp.pipeline.len(),
        pct(gt_pipe.precision())
    ));
    r.line(format!(
        "blocks only the baseline accepts (its false-positive pool): {}",
        cmp.baseline_only().len()
    ));
    // The Glatz-style one-way comparator needs flow-level records.
    if let Some(records) = &data.records_day0 {
        let one_way = baseline::one_way_blocks(records, &rib);
        let gt = eval::GroundTruthReport::evaluate(&one_way, &world.net, Day(0), 1);
        r.line(format!(
            "one-way (Glatz) baseline: {} blocks, precision {} (reverse flows are\n\
             often simply unsampled at IXP rates, inflating its false positives)",
            one_way.len(),
            pct(gt.precision())
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{simulate, Needs, Profile};

    #[test]
    fn all_experiments_run_on_the_small_profile() {
        let world = World::new(Profile::Small, 3);
        let mut needs = Needs::everything();
        needs.days = 2; // keep the test quick; windows still exist
        let data = simulate(&world, needs);
        for id in ALL_IDS {
            let report = run(id, &world, &data).unwrap_or_else(|| panic!("unknown id {id}"));
            assert!(!report.body.is_empty(), "{id} produced no output");
        }
        let b = baseline_report(&world, &data);
        assert!(!b.body.is_empty());
    }

    #[test]
    fn unknown_experiment_is_none() {
        let world = World::new(Profile::Small, 3);
        let data = simulate(
            &world,
            Needs {
                days: 1,
                vp_day0: true,
                ..Needs::default()
            },
        );
        assert!(run("table99", &world, &data).is_none());
    }
}
