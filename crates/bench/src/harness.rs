//! Shared machinery for the `repro` binary and the Criterion benches:
//! scenario setup, the multi-day orchestration that collects everything
//! the paper's tables and figures need, and auxiliary emission sinks.

use mt_core::analysis::PortMatrix;
use mt_core::{combine, pipeline, PipelineEngine, SpoofTolerance};
use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_flow::{FlowRecord, ShardedTrafficStats, TrafficStats};
use mt_netmodel::{AuxDatasets, Internet, InternetConfig};
use mt_telescope::TelescopeDayStats;
use mt_traffic::{
    generate_day, CaptureSet, EmissionSink, FlowEmission, SpoofFloodEmission, SpoofSpace,
    TrafficConfig,
};
use mt_types::{Block24, Block24Set, Day};
use std::collections::HashMap;

/// Scenario profile selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Test-sized world (seconds).
    Small,
    /// Paper-scale world (minutes; run in `--release`).
    Paper,
    /// Full-IPv4 world: ~14M announced /24s. Pair with the columnar
    /// stats layout (`--release` only; a day window needs a few GB).
    Full,
}

impl Profile {
    /// Parses `small` / `paper` / `full`.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "small" => Some(Profile::Small),
            "paper" => Some(Profile::Paper),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }

    /// The scenario config for this profile.
    pub fn config(self) -> InternetConfig {
        match self {
            Profile::Small => InternetConfig::small(),
            Profile::Paper => InternetConfig::paper(),
            Profile::Full => InternetConfig::full(),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Small => "small",
            Profile::Paper => "paper",
            Profile::Full => "full",
        }
    }
}

/// The fully-set-up world every experiment runs against.
pub struct World {
    /// The synthetic Internet.
    pub net: Internet,
    /// Traffic volumes and campaign roster.
    pub traffic: TrafficConfig,
    /// Forged-source space for spoofed floods.
    pub spoof: SpoofSpace,
    /// Activity datasets (Censys/NDT/ISI stand-ins).
    pub aux: AuxDatasets,
    /// Profile name (for report headers).
    pub profile: Profile,
    /// Scenario seed.
    pub seed: u64,
}

impl World {
    /// Builds the world for `(profile, seed)`.
    pub fn new(profile: Profile, seed: u64) -> World {
        let net = Internet::generate(profile.config(), seed);
        let traffic = TrafficConfig::default_profile();
        let spoof = SpoofSpace::new(&net, traffic.spoof_routed_bias);
        let aux = AuxDatasets::generate(&net);
        World {
            net,
            traffic,
            spoof,
            aux,
            profile,
            seed,
        }
    }

    /// The shared sampling rate of the scenario's vantage points.
    pub fn sampling_rate(&self) -> u32 {
        self.net.vantage_points[0].sampling_rate
    }
}

/// What a repro invocation needs the orchestrator to produce.
#[derive(Debug, Clone, Copy, Default)]
pub struct Needs {
    /// Number of days to simulate (0 = none).
    pub days: u32,
    /// Keep per-vantage-point day-0 pipeline results.
    pub vp_day0: bool,
    /// Capture the calibration ISP border on day 0.
    pub isp_day0: bool,
    /// Keep telescope day statistics for every simulated day.
    pub telescopes: bool,
    /// Track cumulative CE1/NA1/All windows (strict + tolerant).
    pub cumulative: bool,
    /// Retain the raw sampled records of day 0 (Figure 10).
    pub records_day0: bool,
    /// Run the dark-port counting pass on day 0 (Figures 11/12/18–20).
    pub dark_ports_day0: bool,
}

impl Needs {
    /// Everything, for `repro all`.
    pub fn everything() -> Needs {
        Needs {
            days: 7,
            vp_day0: true,
            isp_day0: true,
            telescopes: true,
            cumulative: true,
            records_day0: true,
            dark_ports_day0: true,
        }
    }
}

/// One per-day data point of a labeled series.
#[derive(Debug, Clone)]
pub struct DailyPoint {
    /// The day.
    pub day: Day,
    /// Inferred dark blocks per label (`CE1`, `NA1`, `All`).
    pub dark: HashMap<String, usize>,
}

/// One cumulative-window data point.
#[derive(Debug, Clone)]
pub struct CumulativePoint {
    /// Window length in days (starting at day 0).
    pub days: u32,
    /// Strict inference per label.
    pub strict: HashMap<String, usize>,
    /// Tolerance-adjusted inference per label.
    pub tolerant: HashMap<String, usize>,
    /// The estimated tolerance per label (sampled packets).
    pub tolerance: HashMap<String, u64>,
}

/// Everything the experiments consume.
pub struct SimData {
    /// Per-VP day-0 pipeline results, in vantage-point order, plus the
    /// merged `All` entry at the end.
    pub day0_results: Vec<(String, pipeline::PipelineResult)>,
    /// Day-0 merged (All) stats (sharded), kept for the
    /// tolerance/ablation runs.
    pub day0_all_stats: Option<ShardedTrafficStats>,
    /// Day-0 sampled-flow counts per vantage point.
    pub day0_flows: HashMap<String, u64>,
    /// Per-day inference counts (Figure 8).
    pub daily: Vec<DailyPoint>,
    /// Cumulative windows (Figure 9 / Table 4).
    pub cumulative: Vec<CumulativePoint>,
    /// Dark sets for selected windows: `(label, days, tolerant)`.
    pub window_darks: HashMap<(String, u32, bool), Block24Set>,
    /// Telescope day statistics.
    pub telescope_days: Vec<Vec<TelescopeDayStats>>,
    /// ISP border stats from day 0.
    pub isp_stats: Option<TrafficStats>,
    /// ISP host AS index.
    pub isp_as: Option<u32>,
    /// Raw day-0 records (all vantage points concatenated).
    pub records_day0: Option<Vec<FlowRecord>>,
    /// Port matrix of day-0 traffic toward the day-0 All dark set.
    pub port_matrix: Option<PortMatrix>,
}

/// Labels tracked by the daily/cumulative series.
pub const SERIES: [&str; 3] = ["CE1", "NA1", "All"];

/// Runs the orchestrated simulation.
pub fn simulate(world: &World, needs: Needs) -> SimData {
    let net = &world.net;
    let rate = world.sampling_rate();
    let pc = pipeline::PipelineConfig::default();
    let engine = PipelineEngine::standard();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut data = SimData {
        day0_results: Vec::new(),
        day0_all_stats: None,
        day0_flows: HashMap::new(),
        daily: Vec::new(),
        cumulative: Vec::new(),
        window_darks: HashMap::new(),
        telescope_days: vec![Vec::new(); net.telescopes.len()],
        isp_stats: None,
        isp_as: None,
        records_day0: None,
        port_matrix: None,
    };
    let mut cumulative: HashMap<String, ShardedTrafficStats> = HashMap::new();

    for d in 0..needs.days {
        let day = Day(d);
        eprintln!("[repro] simulating {day} ...");
        let mut capture = CaptureSet::new(
            net,
            day,
            &world.spoof,
            DEFAULT_SIZE_THRESHOLD,
            needs.isp_day0 && d == 0,
        );
        if needs.records_day0 && d == 0 {
            for vo in &mut capture.vantages {
                vo.retain_records();
            }
        }
        generate_day(net, &world.traffic, day, &mut capture);

        if needs.telescopes {
            for (i, t) in capture.telescopes.iter().enumerate() {
                data.telescope_days[i].push(TelescopeDayStats::from_observer(t, day));
            }
        }
        if let Some(isp) = capture.isp.take() {
            data.isp_as = Some(isp.as_idx);
            data.isp_stats = Some(isp.stats);
        }

        // Per-VP handling: pipeline on day 0, then fold into All.
        let rib_day = net.rib(day);
        let mut all_day: Option<ShardedTrafficStats> = None;
        let mut daily_point = DailyPoint {
            day,
            dark: HashMap::new(),
        };
        let mut records: Vec<FlowRecord> = Vec::new();
        for mut vo in capture.vantages {
            let code = vo.vp.code.clone();
            if let Some(mut r) = vo.records.take() {
                records.append(&mut r);
            }
            if d == 0 && needs.vp_day0 {
                let result = pipeline::run(&vo.stats, &rib_day, rate, 1, &pc);
                data.day0_flows.insert(code.clone(), vo.sampled_flows);
                data.day0_results.push((code.clone(), result));
            }
            if SERIES.contains(&code.as_str()) {
                let result = pipeline::run(&vo.stats, &rib_day, rate, 1, &pc);
                daily_point.dark.insert(code.clone(), result.dark.len());
                if needs.cumulative {
                    cumulative
                        .entry(code.clone())
                        .and_modify(|m| m.merge(&vo.stats))
                        .or_insert_with(|| vo.stats.clone());
                }
            }
            let stats = vo.into_sharded();
            match &mut all_day {
                None => all_day = Some(stats),
                Some(m) => m.merge(&stats),
            }
        }
        if needs.records_day0 && d == 0 {
            data.records_day0 = Some(records);
        }
        let all_day = all_day.expect("scenario has vantage points");
        let all_result = engine.run_sharded(&all_day, &rib_day, rate, 1, &pc, threads);
        daily_point
            .dark
            .insert("All".to_owned(), all_result.dark.len());
        if d == 0 && needs.vp_day0 {
            data.day0_results.push(("All".to_owned(), all_result));
        }
        data.daily.push(daily_point);
        if needs.cumulative {
            cumulative
                .entry("All".to_owned())
                .and_modify(|m| m.merge(&all_day))
                .or_insert_with(|| all_day.clone());
        }
        if d == 0 {
            data.day0_all_stats = Some(all_day);
        }

        // Cumulative windows after each day.
        if needs.cumulative {
            let window_days = d + 1;
            let rib = combine::rib_union(net, Day(0), window_days);
            let mut point = CumulativePoint {
                days: window_days,
                strict: HashMap::new(),
                tolerant: HashMap::new(),
                tolerance: HashMap::new(),
            };
            for label in SERIES {
                let stats = &cumulative[label];
                let strict = engine.run_sharded(stats, &rib, rate, window_days, &pc, threads);
                let tol = SpoofTolerance::estimate(stats, net.unrouted_octets(), 0.9999);
                let tolerant = engine.run_sharded(
                    stats,
                    &rib,
                    rate,
                    window_days,
                    &pipeline::PipelineConfig {
                        spoof_tolerance_packets: tol.packets.max(1),
                        ..pc.clone()
                    },
                    threads,
                );
                point.strict.insert(label.to_owned(), strict.dark.len());
                point.tolerant.insert(label.to_owned(), tolerant.dark.len());
                point.tolerance.insert(label.to_owned(), tol.packets.max(1));
                // Keep the dark sets Table 4 / Figures 3, 5, 6 consume.
                if window_days == 1 || window_days == needs.days {
                    data.window_darks
                        .insert((label.to_owned(), window_days, false), strict.dark);
                    data.window_darks
                        .insert((label.to_owned(), window_days, true), tolerant.dark);
                }
            }
            data.cumulative.push(point);
        }
    }

    // Dark-port pass over day 0 (needs the day-0 All dark set).
    if needs.dark_ports_day0 {
        let dark = data
            .day0_results
            .iter()
            .find(|(code, _)| code == "All")
            .map(|(_, r)| r.dark.clone())
            .or_else(|| {
                data.window_darks
                    .get(&("All".to_owned(), 1, false))
                    .cloned()
            })
            .expect("day-0 All result required for the port pass");
        let mut sink = DarkPortSink {
            dark: &dark,
            net,
            matrix: PortMatrix::new(),
        };
        eprintln!("[repro] counting ports toward the day-0 meta-telescope ...");
        generate_day(net, &world.traffic, Day(0), &mut sink);
        data.port_matrix = Some(sink.matrix);
    }

    data
}

/// Counts TCP destination ports of traffic toward an inferred dark set,
/// bucketed by the destination's region and network type.
pub struct DarkPortSink<'a> {
    /// The inferred meta-telescope prefixes.
    pub dark: &'a Block24Set,
    /// The world (for block attribution).
    pub net: &'a Internet,
    /// The accumulating matrix.
    pub matrix: PortMatrix,
}

impl EmissionSink for DarkPortSink<'_> {
    fn flow(&mut self, e: &FlowEmission) {
        if e.intent.protocol != 6 {
            return;
        }
        let block = Block24::containing(e.intent.dst);
        if !self.dark.contains(block) {
            return;
        }
        if let Some(a) = self.net.as_of_block(block) {
            self.matrix.add(
                e.intent.dst_port,
                a.continent,
                a.network_type,
                e.intent.packets,
            );
        }
    }

    fn spoof_flood(&mut self, _: &SpoofFloodEmission) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_simulation_produces_day0_results() {
        let world = World::new(Profile::Small, 5);
        let needs = Needs {
            days: 1,
            vp_day0: true,
            telescopes: true,
            ..Needs::default()
        };
        let data = simulate(&world, needs);
        assert_eq!(data.day0_results.len(), world.net.vantage_points.len() + 1);
        assert_eq!(data.day0_results.last().unwrap().0, "All");
        assert_eq!(data.daily.len(), 1);
        assert!(data.telescope_days.iter().all(|d| d.len() == 1));
        assert!(data.cumulative.is_empty());
    }

    #[test]
    fn cumulative_simulation_tracks_series() {
        let world = World::new(Profile::Small, 5);
        let needs = Needs {
            days: 2,
            cumulative: true,
            ..Needs::default()
        };
        let data = simulate(&world, needs);
        assert_eq!(data.cumulative.len(), 2);
        for point in &data.cumulative {
            for label in SERIES {
                assert!(point.strict.contains_key(label));
                assert!(point.tolerant.contains_key(label));
            }
        }
        // Window dark sets stored for 1 day and the final window.
        assert!(data.window_darks.contains_key(&("All".to_owned(), 1, true)));
        assert!(data
            .window_darks
            .contains_key(&("All".to_owned(), 2, false)));
    }

    #[test]
    fn records_and_ports_are_optional_extras() {
        let world = World::new(Profile::Small, 5);
        let needs = Needs {
            days: 1,
            vp_day0: true,
            records_day0: true,
            dark_ports_day0: true,
            ..Needs::default()
        };
        let data = simulate(&world, needs);
        let records = data.records_day0.as_ref().unwrap();
        assert!(!records.is_empty());
        let matrix = data.port_matrix.as_ref().unwrap();
        assert!(matrix.total > 0);
    }
}
