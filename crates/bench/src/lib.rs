//! Benchmark and reproduction harness for the meta-telescope workspace.
//!
//! - [`harness`] — scenario setup and the multi-day orchestration that
//!   collects everything the paper's exhibits need;
//! - [`experiments`] — one function per table/figure (see DESIGN.md §4);
//! - [`report`] — plain-text report assembly.
//!
//! The `repro` binary (`src/bin/repro.rs`) drives these; the Criterion
//! benches under `benches/` measure the hot kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;
