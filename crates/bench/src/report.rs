//! Tiny report-building helpers for the `repro` harness.

/// One regenerated table or figure.
pub struct Report {
    /// Experiment id (`table3`, `fig9`, ...).
    pub id: String,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// Monospace body (tables, series, ASCII art).
    pub body: String,
    /// Binary side-files (PPM images), `(file name, bytes)`.
    pub files: Vec<(String, Vec<u8>)>,
}

impl Report {
    /// Creates a report with an empty body.
    pub fn new(id: &str, title: &str) -> Report {
        Report {
            id: id.to_owned(),
            title: title.to_owned(),
            body: String::new(),
            files: Vec::new(),
        }
    }

    /// Appends a line to the body.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.body.push_str(s.as_ref());
        self.body.push('\n');
    }

    /// Appends an empty line.
    pub fn blank(&mut self) {
        self.body.push('\n');
    }
}

/// Right-aligns `s` in a `width`-character cell.
pub fn cell(s: impl ToString, width: usize) -> String {
    format!("{:>width$}", s.to_string(), width = width)
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Builds one row of right-aligned cells.
pub fn row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| cell(c, width))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_lines() {
        let mut r = Report::new("t", "Title");
        r.line("a");
        r.blank();
        r.line("b");
        assert_eq!(r.body, "a\n\nb\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(cell(42, 5), "   42");
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(row(&["a".into(), "bb".into()], 3), "  a  bb");
    }
}
