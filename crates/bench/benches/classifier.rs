//! Criterion bench: the Table 3 classifier calibration kernel — label
//! derivation and the median/average threshold sweep on ISP border data.

use criterion::{criterion_group, criterion_main, Criterion};
use mt_bench::harness::{Profile, World};
use mt_core::classifier;
use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_traffic::{generate_day, CaptureSet};
use mt_types::{Block24Set, Day};
use std::hint::black_box;

fn bench_classifier(c: &mut Criterion) {
    let world = World::new(Profile::Small, 42);
    let mut capture = CaptureSet::new(
        &world.net,
        Day(0),
        &world.spoof,
        DEFAULT_SIZE_THRESHOLD,
        true,
    );
    generate_day(&world.net, &world.traffic, Day(0), &mut capture);
    let isp = capture.isp.unwrap();
    let scope: Block24Set = world
        .net
        .announcements
        .iter()
        .filter(|a| a.as_idx == isp.as_idx)
        .flat_map(|a| a.prefix.blocks24())
        .collect();

    let mut group = c.benchmark_group("classifier");
    group.sample_size(20);
    group.bench_function("derive_labels", |b| {
        b.iter(|| {
            black_box(classifier::CalibrationLabels::derive(
                &isp.stats, &scope, 2_000,
            ))
        })
    });
    let labels = classifier::CalibrationLabels::derive(&isp.stats, &scope, 2_000);
    group.bench_function("table3_sweep", |b| {
        b.iter(|| black_box(classifier::sweep(&isp.stats, &labels, &[40, 42, 44, 46])))
    });
    group.bench_function("single_cell_average_44", |b| {
        b.iter(|| {
            black_box(classifier::evaluate(
                &isp.stats,
                &labels,
                classifier::ClassifierFeature::Average,
                44,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
