//! Serve bench: the daemon under fleet load on real loopback sockets.
//!
//! Two phases, each against a fresh daemon:
//!
//! - `tcp_fleet` — 128 concurrent TCP exporters blast one day of flows
//!   through the event loop; backpressure paces them end to end, so the
//!   measured rate is the daemon's sustained lossless ingest throughput.
//!   p50/p99 per-push ingest latency comes from the daemon's own
//!   `mt_serve_ingest_nanoseconds` histogram.
//! - `udp_path` — a smaller UDP fleet with deliberately torn datagrams
//!   mixed in; UDP has no backpressure, so the bench waits for
//!   quiescence and reports delivery and rejection honestly.
//!
//! Emits machine-readable `BENCH_serve.json` (path overridable via the
//! `BENCH_SERVE_JSON` env var) for CI validation. Run with no `--bench`
//! flag (as `cargo test` does) or with `--smoke` it uses small flow
//! counts; under `cargo bench` it uses full sizes.

use mt_serve::replay::{self, Workload};
use mt_serve::{Daemon, ServeConfig, ShutdownHandle};
use mt_stream::{HealthSnapshot, OverflowPolicy, StreamConfig};
use mt_types::{Day, SimDuration};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

#[derive(Serialize, Clone)]
struct TcpFleet {
    event_loops: usize,
    exporters: usize,
    flows: u64,
    seconds: f64,
    flows_per_second: f64,
    p50_ingest_ns: u64,
    p99_ingest_ns: u64,
}

#[derive(Serialize)]
struct UdpPath {
    exporters: usize,
    datagrams_sent: u64,
    datagrams_received: u64,
    datagrams_rejected: u64,
    flows_sent: u64,
    flows_decoded: u64,
    delivery_rate: f64,
}

/// The event-loop scaling dimension: the same TCP fleet run at each
/// loop count. CI validates the 4-loop throughput floor against the
/// 1-loop baseline from these entries.
#[derive(Serialize)]
struct Scaling {
    loops: Vec<TcpFleet>,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    tcp: TcpFleet,
    udp: UdpPath,
    scaling: Scaling,
}

struct Sizes {
    tcp_exporters: usize,
    tcp_flows_per_exporter: usize,
    udp_exporters: usize,
    udp_flows_per_exporter: usize,
}

const SMOKE: Sizes = Sizes {
    tcp_exporters: 128,
    tcp_flows_per_exporter: 500,
    udp_exporters: 16,
    udp_flows_per_exporter: 500,
};

const FULL: Sizes = Sizes {
    tcp_exporters: 128,
    tcp_flows_per_exporter: 20_000,
    udp_exporters: 32,
    udp_flows_per_exporter: 5_000,
};

type RibFn = fn(Day) -> mt_types::PrefixTrie<mt_types::Asn>;

fn daemon(event_loops: usize) -> (Daemon<RibFn>, ShutdownHandle) {
    let d = Daemon::bind(
        ServeConfig {
            event_loops,
            stream: StreamConfig {
                ingest_threads: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
                overflow: OverflowPolicy::Block,
                allowed_lateness: SimDuration::hours(2),
                ..StreamConfig::default()
            },
            ..ServeConfig::default()
        },
        (|_| replay::default_rib()) as RibFn,
    )
    .expect("bind daemon");
    let h = d.shutdown_handle().expect("shutdown handle");
    (d, h)
}

fn health(http: SocketAddr) -> HealthSnapshot {
    let mut sock = TcpStream::connect(http).expect("connect http");
    sock.write_all(b"GET /health HTTP/1.1\r\nHost: b\r\n\r\n")
        .expect("send request");
    let mut response = Vec::new();
    sock.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("utf8");
    let body = &text[text.find("\r\n\r\n").expect("head end") + 4..];
    serde_json::from_str(body).expect("health json")
}

/// Per-push ingest latency quantile, merged across the per-loop
/// `mt_serve_ingest_nanoseconds{loop=...}` series (identical bounds).
fn ingest_quantile(out: &mt_serve::ServeOutput, q: f64) -> u64 {
    let snap = out.stream.registry.snapshot();
    let merged = snap
        .merged_histogram("mt_serve_ingest_nanoseconds")
        .expect("uniform bounds")
        .expect("ingest histogram registered");
    merged.quantile_upper_bound(q).expect("histogram not empty")
}

/// 128 concurrent TCP exporters, one day each, backpressure-paced,
/// against a daemon with `event_loops` sharded ingest loops.
fn tcp_fleet(sizes: &Sizes, event_loops: usize) -> TcpFleet {
    let w = Workload {
        exporters: sizes.tcp_exporters,
        days: 1,
        flows_per_exporter_day: sizes.tcp_flows_per_exporter,
        seed: 0xF1EE7,
    };
    let (daemon, handle) = daemon(event_loops);
    let tcp_to = daemon.tcp_addr().expect("tcp on");
    let http = daemon.http_addr().expect("http on");
    let runner = std::thread::spawn(move || daemon.run());

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for e in 0..w.exporters {
            s.spawn(move || {
                let mut seq = 0;
                let messages = w.encode_day(e, Day(0), &mut seq, 64);
                let mut sock = TcpStream::connect(tcp_to).expect("connect exporter");
                for msg in &messages {
                    sock.write_all(msg).expect("send stream");
                }
                sock.shutdown(std::net::Shutdown::Write)
                    .expect("close write");
            });
        }
    });
    // Senders are done; wait until every flow has cleared decode.
    while health(http).decoded < w.total_flows() {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = t0.elapsed().as_secs_f64();

    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    assert_eq!(out.stream.health.decoded, w.total_flows(), "lossless TCP");
    assert_eq!(out.tcp_connections, w.exporters as u64);
    out.stream.health.check_invariants().expect("ledger");

    let fleet = TcpFleet {
        event_loops,
        exporters: w.exporters,
        flows: w.total_flows(),
        seconds,
        flows_per_second: w.total_flows() as f64 / seconds,
        p50_ingest_ns: ingest_quantile(&out, 0.5),
        p99_ingest_ns: ingest_quantile(&out, 0.99),
    };
    println!(
        "tcp_fleet[{} loops]: {} exporters, {} flows in {:.3}s = {:.0} flows/s (ingest p50 <= {} ns, p99 <= {} ns)",
        fleet.event_loops,
        fleet.exporters,
        fleet.flows,
        fleet.seconds,
        fleet.flows_per_second,
        fleet.p50_ingest_ns,
        fleet.p99_ingest_ns
    );
    fleet
}

/// A UDP fleet with torn datagrams mixed in; waits for quiescence and
/// reports delivery honestly (UDP may shed at the kernel buffer).
fn udp_path(sizes: &Sizes) -> UdpPath {
    let w = Workload {
        exporters: sizes.udp_exporters,
        days: 1,
        flows_per_exporter_day: sizes.udp_flows_per_exporter,
        seed: 0x0DD5,
    };
    let (daemon, handle) = daemon(1);
    let udp_to = daemon.udp_addr().expect("udp on");
    let http = daemon.http_addr().expect("http on");
    let runner = std::thread::spawn(move || daemon.run());

    let mut torn_sent = 0u64;
    let datagrams_sent: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..w.exporters)
            .map(|e| {
                s.spawn(move || {
                    let sock = UdpSocket::bind(("127.0.0.1", 0)).expect("bind exporter");
                    let mut seq = 0;
                    let mut sent = 0u64;
                    for (i, msg) in w.encode_day(e, Day(0), &mut seq, 64).iter().enumerate() {
                        // Every 8th datagram goes out torn mid-record.
                        let payload = if i % 8 == 7 {
                            &msg[..msg.len() - 5]
                        } else {
                            &msg[..]
                        };
                        sock.send_to(payload, udp_to).expect("send datagram");
                        sent += 1;
                    }
                    sent
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exporter"))
            .sum()
    });
    for e in 0..w.exporters {
        let msgs = w.encode_day(e, Day(0), &mut 0, 64);
        torn_sent += (msgs.len() as u64) / 8;
    }

    // Quiescence: decoded stable across 25 consecutive 4ms polls.
    let mut last = 0;
    let mut stable = 0;
    while stable < 25 {
        std::thread::sleep(Duration::from_millis(4));
        let now = health(http).decoded;
        if now == last {
            stable += 1;
        } else {
            stable = 0;
            last = now;
        }
    }

    handle.shutdown();
    let out = runner.join().expect("join").expect("run");
    out.stream.health.check_invariants().expect("ledger");
    assert!(
        out.datagrams_rejected <= torn_sent,
        "only torn datagrams get rejected"
    );
    if out.datagrams == datagrams_sent {
        assert_eq!(
            out.datagrams_rejected, torn_sent,
            "lossless delivery: every torn datagram was rejected"
        );
    }

    let path = UdpPath {
        exporters: w.exporters,
        datagrams_sent,
        datagrams_received: out.datagrams,
        datagrams_rejected: out.datagrams_rejected,
        flows_sent: w.total_flows(),
        flows_decoded: out.stream.health.decoded,
        delivery_rate: out.datagrams as f64 / datagrams_sent as f64,
    };
    println!(
        "udp_path: {} exporters, {}/{} datagrams delivered ({:.1}%), {} rejected (torn), {}/{} flows decoded",
        path.exporters,
        path.datagrams_received,
        path.datagrams_sent,
        100.0 * path.delivery_rate,
        path.datagrams_rejected,
        path.flows_decoded,
        path.flows_sent
    );
    path
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = !args.iter().any(|a| a == "--bench")
        || args.iter().any(|a| a == "--smoke" || a == "--test");
    let (mode, sizes) = if smoke {
        ("smoke", SMOKE)
    } else {
        ("full", FULL)
    };
    println!("serve bench ({mode} mode)");

    // The scaling dimension: the same fleet at 1, 2, and 4 event
    // loops. The 1-loop run doubles as the headline `tcp` phase; the
    // ratio of the 4-loop entry over it is what CI's throughput floor
    // checks (only meaningful on a multi-core runner).
    let scaling = Scaling {
        loops: [1, 2, 4].map(|n| tcp_fleet(&sizes, n)).into(),
    };
    let report = Report {
        bench: "serve",
        mode,
        tcp: scaling.loops[0].clone(),
        udp: udp_path(&sizes),
        scaling,
    };

    let path = std::env::var("BENCH_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
