//! Criterion bench: the seven-step inference pipeline (Figure 2 kernel)
//! and its origin-only baseline, on a pre-captured small-profile day.

use criterion::{criterion_group, criterion_main, Criterion};
use mt_bench::harness::{Profile, World};
use mt_core::{baseline, pipeline};
use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_flow::TrafficStats;
use mt_traffic::{generate_day, CaptureSet};
use mt_types::Day;
use std::hint::black_box;

fn captured_stats(world: &World) -> TrafficStats {
    let mut capture = CaptureSet::new(
        &world.net,
        Day(0),
        &world.spoof,
        DEFAULT_SIZE_THRESHOLD,
        false,
    );
    generate_day(&world.net, &world.traffic, Day(0), &mut capture);
    let mut merged: Option<TrafficStats> = None;
    for vo in capture.vantages {
        let s = vo.into_stats();
        match &mut merged {
            None => merged = Some(s),
            Some(m) => m.merge(&s),
        }
    }
    merged.unwrap()
}

fn bench_pipeline(c: &mut Criterion) {
    let world = World::new(Profile::Small, 42);
    let stats = captured_stats(&world);
    let rib = world.net.rib(Day(0));
    let rate = world.sampling_rate();
    let pc = pipeline::PipelineConfig::default();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    group.bench_function("seven_steps_full_day", |b| {
        b.iter(|| black_box(pipeline::run(&stats, &rib, rate, 1, &pc)))
    });
    group.bench_function("origin_only_baseline", |b| {
        b.iter(|| black_box(baseline::origin_only(&stats, &rib)))
    });
    group.bench_function("stats_merge_self", |b| {
        b.iter(|| {
            let mut a = stats.clone();
            a.merge(&stats);
            black_box(a.total_flows)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
