//! Store bench: persist, cold-load, and query the results store.
//!
//! Three phases over one synthetic deployment (a /8 of announced space,
//! 65 536 slots, LCG-generated per-window columns):
//!
//! - `write` — persist N day windows plus the incrementally merged
//!   summary after each, exactly the serve daemon's sink sequence;
//!   reports bytes and throughput.
//! - `cold_load` — rebuild the `QueryIndex` from the files alone:
//!   checksum validation, fingerprint gating, verdict caching.
//! - `query` — point lookups and 256-block range scans against the
//!   loaded cache; reports QPS for each, which CI floors.
//!
//! Emits machine-readable `BENCH_store.json` (path overridable via the
//! `BENCH_STORE_JSON` env var). Run with no `--bench` flag (as
//! `cargo test` does) or with `--smoke` it uses small sizes; under
//! `cargo bench` it uses full sizes.

use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_flow::{ColumnSlices, DstRowExport, SrcRowExport};
use mt_store::{QueryIndex, ResultsStore, StoreConfig, SummaryData, Verdicts, WindowData};
use mt_types::{Asn, Block24, Day, Ipv4, Prefix, PrefixTrie, RibIndex, Slot24Index};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct WritePhase {
    windows: u32,
    rows_per_window: usize,
    bytes_written: u64,
    seconds: f64,
    bytes_per_second: f64,
}

#[derive(Serialize)]
struct ColdLoadPhase {
    windows: usize,
    bytes: u64,
    seconds: f64,
    millis: f64,
}

#[derive(Serialize)]
struct QueryPhase {
    point_queries: u64,
    point_seconds: f64,
    point_qps: f64,
    range_scans: u64,
    range_span_blocks: u32,
    range_seconds: f64,
    range_qps: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    write: WritePhase,
    cold_load: ColdLoadPhase,
    query: QueryPhase,
}

struct Sizes {
    windows: u32,
    rows_per_window: usize,
    point_queries: u64,
    range_scans: u64,
}

const SMOKE: Sizes = Sizes {
    windows: 3,
    rows_per_window: 2_000,
    point_queries: 20_000,
    range_scans: 200,
};

const FULL: Sizes = Sizes {
    windows: 14,
    rows_per_window: 40_000,
    point_queries: 200_000,
    range_scans: 2_000,
};

const RANGE_SPAN: u32 = 256;

/// Deterministic 64-bit LCG (PCG multiplier); high bits are well mixed.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 11
}

/// The announced space: all of 20.0.0.0/8, i.e. 65 536 /24 slots.
fn slot_index() -> Arc<Slot24Index> {
    let mut trie = PrefixTrie::new();
    trie.insert(
        Prefix::new(Ipv4(20 << 24), 8).expect("aligned /8"),
        Asn(65_000),
    );
    Arc::new(Slot24Index::build(&RibIndex::build(&trie)))
}

/// One synthetic closed window: `rows` populated slots spread evenly
/// over the slot space, a sparse overflow section, verdicts over a
/// subset of the populated slots, and a port histogram.
fn synth_window(day: u32, rows: usize, slots: &Slot24Index) -> WindowData {
    let num = slots.num_slots();
    let rows = rows.min(num as usize);
    let step = (num as usize / rows).max(1);
    let mut st = 0x5EED_0000 ^ u64::from(day).wrapping_mul(0x9E37_79B9);
    let mut columns = ColumnSlices::empty(DEFAULT_SIZE_THRESHOLD);
    let mut verdicts = Verdicts::default();
    for i in 0..rows {
        // One slot per stride keeps ids strictly ascending.
        let slot = (i * step) as u32 + (lcg(&mut st) % step as u64) as u32;
        let r = lcg(&mut st);
        columns.dst.push((
            slot,
            DstRowExport {
                tcp_packets: r % 10_000,
                tcp_octets: (r % 10_000) * 640,
                udp_packets: r % 500,
                icmp_packets: r % 50,
                other_packets: r % 10,
                received: [lcg(&mut st), lcg(&mut st), 0, 0],
                received_tcp: [lcg(&mut st), 0, 0, 0],
                received_big_tcp: [lcg(&mut st) & 0xff, 0, 0, 0],
                tcp_sizes: vec![(40, r % 512 + 1), (1500, r % 64 + 1)],
            },
        ));
        if i % 2 == 0 {
            columns.src.push((
                slot,
                SrcRowExport {
                    packets: r % 2_000,
                    originating: [lcg(&mut st), 0, 0, 0],
                },
            ));
        }
        match r % 10 {
            0..=2 => verdicts.dark_slots.push(slot),
            3 => verdicts.unclean_slots.push(slot),
            4 => verdicts.gray_slots.push(slot),
            _ => {}
        }
        columns.total_flows += r % 100;
        columns.total_packets += r % 1_000;
        columns.total_octets += (r % 1_000) * 640;
    }
    // A handful of rows outside announced space (below 20.0.0.0).
    for i in 0..16u32 {
        let id = i * 1_000 + (lcg(&mut st) % 1_000) as u32;
        columns.ovf_dst.push((
            id,
            DstRowExport {
                udp_packets: lcg(&mut st) % 100,
                received: [lcg(&mut st), 0, 0, 0],
                ..DstRowExport::default()
            },
        ));
        verdicts.dark_blocks.push(id);
    }
    let ports = (0..40u16)
        .map(|p| (p * 157 + 23, lcg(&mut st) % 100_000 + 1))
        .collect();
    WindowData {
        day: Day(day),
        records: columns.total_flows,
        fingerprint: slots.fingerprint(),
        num_slots: num,
        columns,
        verdicts,
        ports,
    }
}

fn temp_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mt-bench-store-{}", std::process::id()))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = !args.iter().any(|a| a == "--bench")
        || args.iter().any(|a| a == "--smoke" || a == "--test");
    let (mode, sizes) = if smoke {
        ("smoke", SMOKE)
    } else {
        ("full", FULL)
    };
    println!("store bench ({mode} mode)");

    let slots = slot_index();
    let dir = temp_dir();
    std::fs::remove_dir_all(&dir).ok();
    let store = ResultsStore::open(StoreConfig {
        dir: dir.clone(),
        slots: Arc::clone(&slots),
    })
    .expect("open store");

    // --- write: the daemon sink sequence, window + summary per day ---
    let t0 = Instant::now();
    let mut bytes_written = 0u64;
    let mut summary = SummaryData::empty();
    for day in 0..sizes.windows {
        let w = synth_window(day, sizes.rows_per_window, &slots);
        bytes_written += store.write_window(&w).expect("persist window");
        summary.merge_window(&w).expect("incremental merge");
        summary.set_verdicts(w.verdicts.clone());
        bytes_written += store.write_summary(&summary).expect("persist summary");
    }
    let write_seconds = t0.elapsed().as_secs_f64();
    let write = WritePhase {
        windows: sizes.windows,
        rows_per_window: sizes.rows_per_window,
        bytes_written,
        seconds: write_seconds,
        bytes_per_second: bytes_written as f64 / write_seconds,
    };
    println!(
        "write: {} windows x {} rows = {} bytes in {:.3}s ({:.1} MB/s)",
        write.windows,
        write.rows_per_window,
        write.bytes_written,
        write.seconds,
        write.bytes_per_second / 1e6
    );

    // --- cold load: rebuild the query cache from the files alone -----
    let t0 = Instant::now();
    let (index, cold) = QueryIndex::cold_load(&store).expect("cold load");
    let cold_seconds = t0.elapsed().as_secs_f64();
    let cold_load = ColdLoadPhase {
        windows: cold.windows,
        bytes: cold.bytes,
        seconds: cold_seconds,
        millis: cold_seconds * 1e3,
    };
    assert_eq!(cold.windows, sizes.windows as usize);
    println!(
        "cold_load: {} windows, {} bytes in {:.1} ms",
        cold_load.windows, cold_load.bytes, cold_load.millis
    );

    // --- queries against the loaded cache ----------------------------
    let mut st = 0xBEEF;
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for _ in 0..sizes.point_queries {
        let addr = Ipv4((20 << 24) | (lcg(&mut st) % (1 << 24)) as u32);
        let report = index.point(addr);
        checksum += report.verdict.len() as u64 + u64::from(report.windows);
    }
    let point_seconds = t0.elapsed().as_secs_f64();

    let span = RANGE_SPAN;
    let base = 20u32 << 16;
    let t0 = Instant::now();
    for _ in 0..sizes.range_scans {
        let day = Day((lcg(&mut st) % u64::from(sizes.windows)) as u32);
        let from = base + (lcg(&mut st) % u64::from(65_536 - span)) as u32;
        let report = index
            .range(day, Block24(from), Block24(from + span - 1))
            .expect("cached day");
        checksum += report.total as u64;
    }
    let range_seconds = t0.elapsed().as_secs_f64();

    let query = QueryPhase {
        point_queries: sizes.point_queries,
        point_seconds,
        point_qps: sizes.point_queries as f64 / point_seconds,
        range_scans: sizes.range_scans,
        range_span_blocks: span,
        range_seconds,
        range_qps: sizes.range_scans as f64 / range_seconds,
    };
    println!(
        "query: {} point lookups = {:.0}/s, {} range scans ({} blocks) = {:.0}/s (checksum {})",
        query.point_queries, query.point_qps, query.range_scans, span, query.range_qps, checksum
    );

    std::fs::remove_dir_all(&dir).ok();

    let report = Report {
        bench: "store",
        mode,
        write,
        cold_load,
        query,
    };
    let path = std::env::var("BENCH_STORE_JSON").unwrap_or_else(|_| "BENCH_store.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
