//! Criterion bench: core data structures — LPM trie lookups, /24 set
//! algebra (the Figures 8/9 combination kernel), Hilbert mapping, and
//! binomial sampling (the Figure 10 kernel).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mt_bench::harness::{Profile, World};
use mt_flow::binomial;
use mt_types::{Block24, Block24Set, HilbertCurve, Ipv4};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_trie(c: &mut Criterion) {
    let world = World::new(Profile::Paper, 42);
    let rib = world.net.rib(mt_types::Day(0));
    let probes: Vec<Ipv4> = (0..10_000u32)
        .map(|i| Ipv4(i.wrapping_mul(0x9e37_79b9)))
        .collect();
    let mut group = c.benchmark_group("trie");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.sample_size(30);
    group.bench_function("lpm_10k_lookups", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &p in &probes {
                hits += usize::from(rib.lookup(p).is_some());
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_block_sets(c: &mut Criterion) {
    let world = World::new(Profile::Paper, 42);
    let a = world.net.dark_truth.clone();
    let b_set = world.net.active_truth.clone();
    let mut group = c.benchmark_group("block24set");
    group.sample_size(30);
    group.bench_function("union_full_space", |b| {
        b.iter(|| black_box(a.union(&b_set).len()))
    });
    group.bench_function("intersection_len", |b| {
        b.iter(|| black_box(a.intersection_len(&b_set)))
    });
    group.bench_function("iterate_dark_truth", |b| {
        b.iter(|| black_box(a.iter().map(|blk| u64::from(blk.0)).sum::<u64>()))
    });
    let prefix: mt_types::Prefix = "20.0.0.0/8".parse().unwrap();
    group.bench_function("count_in_prefix_slash8", |b| {
        b.iter(|| black_box(a.count_in_prefix(prefix)))
    });
    group.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let h = HilbertCurve::new(8); // a /8 at /24 granularity
    let mut group = c.benchmark_group("hilbert");
    group.throughput(Throughput::Elements(h.cells()));
    group.sample_size(30);
    group.bench_function("d2xy_full_slash8", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for d in 0..h.cells() {
                let (x, y) = h.d2xy(d);
                acc += u64::from(x ^ y);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.sample_size(30);
    group.bench_function("binomial_1k_bursts_rate15", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..1_000 {
                total += binomial(&mut rng, 1_400, 1.0 / 15.0);
            }
            black_box(total)
        })
    });
    group.bench_function("binomial_1k_bursts_rate10000", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut total = 0u64;
            for _ in 0..1_000 {
                total += binomial(&mut rng, 1_400_000, 1.0 / 10_000.0);
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_set_build(c: &mut Criterion) {
    let blocks: Vec<Block24> = (0..100_000u32)
        .map(|i| Block24(i * 37 % (1 << 24)))
        .collect();
    let mut group = c.benchmark_group("block24set_build");
    group.throughput(Throughput::Elements(blocks.len() as u64));
    group.sample_size(20);
    group.bench_function("insert_100k", |b| {
        b.iter(|| {
            let mut s = Block24Set::new();
            for &blk in &blocks {
                s.insert(blk);
            }
            black_box(s.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trie,
    bench_block_sets,
    bench_hilbert,
    bench_sampling,
    bench_set_build
);
criterion_main!(benches);
