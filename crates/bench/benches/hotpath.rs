//! Hot-path bench: the three optimizations of the ingest/lookup
//! overhaul, each measured against the code path it replaced.
//!
//! - `lpm` — [`RibIndex`] flat lookup vs [`PrefixTrie`] pointer walk
//!   over a realistic mixed-length RIB;
//! - `hash_ingest` — [`FxHashMap`] vs the std SipHash map on the
//!   entry-accumulate pattern `TrafficStats` uses per record;
//! - `queue` — per-record queue hand-off vs pooled [`RecordBatch`]es
//!   across a real producer/consumer thread pair.
//!
//! Unlike the Criterion benches this one hand-rolls its harness: it
//! must emit machine-readable `BENCH_hotpath.json` (path overridable
//! via the `BENCH_HOTPATH_JSON` env var) so CI can smoke-run it and
//! validate all three comparison groups. Run with no `--bench` flag
//! (as `cargo test` does) or with `--smoke`, it uses tiny sizes; under
//! `cargo bench` it uses full sizes.

use mt_flow::FlowRecord;
use mt_stream::{BatchPool, BoundedQueue, OverflowPolicy, RecordBatch};
use mt_types::mix::mix3;
use mt_types::{Asn, Day, FxHashMap, Ipv4, Prefix, PrefixTrie, RibIndex, SimTime};
use serde::Serialize;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Variant {
    name: &'static str,
    ns_per_op: f64,
}

#[derive(Serialize)]
struct Group {
    group: &'static str,
    variants: Vec<Variant>,
    /// First variant's ns_per_op over the last's: how much faster the
    /// new path is than the old.
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    groups: Vec<Group>,
}

struct Sizes {
    prefixes: usize,
    probes: usize,
    hash_ops: usize,
    queue_records: usize,
    batch: usize,
    iters: u32,
}

const SMOKE: Sizes = Sizes {
    prefixes: 500,
    probes: 2_000,
    hash_ops: 5_000,
    queue_records: 5_000,
    batch: 64,
    iters: 2,
};

const FULL: Sizes = Sizes {
    prefixes: 20_000,
    probes: 200_000,
    hash_ops: 100_000,
    queue_records: 200_000,
    batch: 256,
    iters: 20,
};

/// Average ns per op over `iters` runs of `f`, each doing `ops` ops.
fn time_per_op<F: FnMut()>(iters: u32, ops: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / (f64::from(iters) * ops as f64)
}

fn group(name: &'static str, old: Variant, new: Variant) -> Group {
    let speedup = old.ns_per_op / new.ns_per_op;
    println!(
        "{name}: {} {:.1} ns/op, {} {:.1} ns/op ({speedup:.2}x)",
        old.name, old.ns_per_op, new.name, new.ns_per_op
    );
    Group {
        group: name,
        variants: vec![old, new],
        speedup,
    }
}

/// A deterministic RIB of mixed-length prefixes (/8 through /24 plus a
/// sprinkle of host routes) and a probe set hitting and missing it.
fn lpm(sizes: &Sizes) -> Group {
    let mut trie = PrefixTrie::new();
    for i in 0..sizes.prefixes as u64 {
        let h = mix3(0xBEEF, i, 1);
        let len = if i % 50 == 0 { 32 } else { 8 + (h % 17) as u8 };
        let base = Ipv4((mix3(0xBEEF, i, 2) as u32) & !0xE000_0000);
        trie.insert(Prefix::containing(base, len), Asn(i as u32));
    }
    let probes: Vec<Ipv4> = (0..sizes.probes as u64)
        .map(|i| Ipv4(mix3(0xCAFE, i, 3) as u32))
        .collect();
    let index = RibIndex::build(&trie);
    for &p in probes.iter().take(64) {
        assert_eq!(index.lookup(p), trie.lookup(p), "index must match trie");
    }
    let trie_v = Variant {
        name: "trie_lookup",
        ns_per_op: time_per_op(sizes.iters, probes.len(), || {
            for &p in &probes {
                black_box(trie.lookup(black_box(p)));
            }
        }),
    };
    let index_v = Variant {
        name: "rib_index_lookup",
        ns_per_op: time_per_op(sizes.iters, probes.len(), || {
            for &p in &probes {
                black_box(index.lookup(black_box(p)));
            }
        }),
    };
    let build = time_per_op(sizes.iters, 1, || {
        black_box(RibIndex::build(black_box(&trie)));
    });
    println!(
        "lpm: index build {:.0} ns over {} intervals",
        build,
        index.num_intervals()
    );
    group("lpm", trie_v, index_v)
}

/// The per-record accumulate pattern: `map.entry(dst /24).or(0) += 1`.
fn hash_ingest(sizes: &Sizes) -> Group {
    let keys: Vec<u32> = (0..sizes.hash_ops as u64)
        .map(|i| (mix3(7, i, 11) as u32) % (sizes.hash_ops as u32 / 4 + 1))
        .collect();
    let std_v = Variant {
        name: "std_siphash_map",
        ns_per_op: time_per_op(sizes.iters, keys.len(), || {
            let mut m: HashMap<u32, u64> = HashMap::new();
            for &k in &keys {
                *m.entry(black_box(k)).or_insert(0) += 1;
            }
            black_box(m.len());
        }),
    };
    let fx_v = Variant {
        name: "fx_hash_map",
        ns_per_op: time_per_op(sizes.iters, keys.len(), || {
            let mut m: FxHashMap<u32, u64> = FxHashMap::default();
            for &k in &keys {
                *m.entry(black_box(k)).or_insert(0) += 1;
            }
            black_box(m.len());
        }),
    };
    group("hash_ingest", std_v, fx_v)
}

fn record(i: u64) -> FlowRecord {
    FlowRecord {
        start: SimTime(i),
        src: Ipv4(mix3(3, i, 1) as u32),
        dst: Ipv4(mix3(3, i, 2) as u32),
        src_port: 40_000,
        dst_port: 23,
        protocol: 6,
        tcp_flags: 2,
        packets: 1 + i % 4,
        octets: 40 * (1 + i % 4),
    }
}

/// Producer/consumer hand-off of `n` records, one queue item each.
fn queue_per_record(n: usize, capacity: usize) {
    let q = Arc::new(BoundedQueue::<FlowRecord>::new(
        capacity,
        OverflowPolicy::Block,
    ));
    let consumer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Some(r) = q.pop() {
                sum += r.octets;
            }
            black_box(sum)
        })
    };
    for i in 0..n as u64 {
        assert!(q.push(record(i)).is_accepted());
    }
    q.close();
    consumer.join().expect("consumer panicked");
}

/// The same hand-off in pooled batches, mirroring `StreamService`.
fn queue_batched(n: usize, capacity: usize, batch: usize) {
    let q = Arc::new(BoundedQueue::<RecordBatch>::new(
        capacity,
        OverflowPolicy::Block,
    ));
    let pool = Arc::new(BatchPool::new(capacity + 2));
    let consumer = {
        let q = Arc::clone(&q);
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Some(b) = q.pop() {
                for r in &b.records {
                    sum += r.octets;
                }
                pool.put(b.records);
            }
            black_box(sum)
        })
    };
    let mut buf = pool.take();
    for i in 0..n as u64 {
        buf.push(record(i));
        if buf.len() == batch {
            let records = std::mem::replace(&mut buf, pool.take());
            assert!(q
                .push(RecordBatch {
                    day: Day(0),
                    records
                })
                .is_accepted());
        }
    }
    if !buf.is_empty() {
        assert!(q
            .push(RecordBatch {
                day: Day(0),
                records: buf
            })
            .is_accepted());
    }
    q.close();
    consumer.join().expect("consumer panicked");
}

fn queue(sizes: &Sizes) -> Group {
    let n = sizes.queue_records;
    let per_record = Variant {
        name: "queue_per_record",
        ns_per_op: time_per_op(sizes.iters, n, || queue_per_record(n, 1024)),
    };
    let batched = Variant {
        name: "queue_batched_pooled",
        ns_per_op: time_per_op(sizes.iters, n, || queue_batched(n, 16, sizes.batch)),
    };
    group("queue", per_record, batched)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = !args.iter().any(|a| a == "--bench")
        || args.iter().any(|a| a == "--smoke" || a == "--test");
    let (mode, sizes) = if smoke {
        ("smoke", SMOKE)
    } else {
        ("full", FULL)
    };
    println!("hotpath bench ({mode} mode)");

    let report = Report {
        bench: "hotpath",
        mode,
        groups: vec![lpm(&sizes), hash_ingest(&sizes), queue(&sizes)],
    };

    let path = std::env::var("BENCH_HOTPATH_JSON").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
