//! Criterion bench: serial vs. sharded traffic aggregation and
//! pipeline evaluation at 1/2/4/8 worker threads.
//!
//! The serial path is the seed architecture: fold every sampled flow
//! record into one flat [`TrafficStats`], then run the seven-step
//! pipeline over the whole block map. The sharded path splits both
//! halves across N workers: `par_ingest` gives each worker a disjoint
//! set of /24 shards (no locks on the hot path), and `run_sharded`
//! evaluates each shard as a self-contained pipeline run whose funnels
//! and block sets fold associatively.
//!
//! On a single-core host the sharded numbers will track serial plus a
//! small coordination overhead; the comparison becomes meaningful at
//! `threads >= 4` on multi-core hardware, where the sharded path should
//! win on both phases.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mt_bench::harness::{Profile, World};
use mt_core::{pipeline, PipelineEngine};
use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_flow::{FlowRecord, ShardedTrafficStats, TrafficStats};
use mt_traffic::{generate_day, CaptureSet};
use mt_types::Day;
use std::hint::black_box;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SHARDS_PER_WORKER: usize = 4;

/// One day of sampled records, pooled across every vantage point.
fn sampled_records(world: &World) -> Vec<FlowRecord> {
    let mut capture = CaptureSet::new(
        &world.net,
        Day(0),
        &world.spoof,
        DEFAULT_SIZE_THRESHOLD,
        false,
    );
    for vo in &mut capture.vantages {
        vo.retain_records();
    }
    generate_day(&world.net, &world.traffic, Day(0), &mut capture);
    let mut records = Vec::new();
    for vo in capture.vantages {
        records.extend(vo.records.unwrap_or_default());
    }
    records
}

fn bench_sharded(c: &mut Criterion) {
    let world = World::new(Profile::Small, 42);
    let records = sampled_records(&world);
    let rib = world.net.rib(Day(0));
    let rate = world.sampling_rate();
    let pc = pipeline::PipelineConfig::default();
    let engine = PipelineEngine::standard();

    // Pre-built inputs for the pipeline-only comparison.
    let flat = TrafficStats::from_records(&records);
    let sharded_by_threads: Vec<(usize, ShardedTrafficStats)> = THREADS
        .iter()
        .map(|&t| {
            let mut s = ShardedTrafficStats::new(t * SHARDS_PER_WORKER);
            s.par_ingest(&records, t);
            (t, s)
        })
        .collect();

    let mut group = c.benchmark_group("sharded");
    group.sample_size(20);
    group.throughput(Throughput::Elements(records.len() as u64));

    // Phase 1: aggregation only.
    group.bench_function("ingest/serial", |b| {
        b.iter(|| black_box(TrafficStats::from_records(&records)))
    });
    for &t in &THREADS {
        group.bench_function(format!("ingest/sharded/{t}thr"), |b| {
            b.iter(|| {
                let mut s = ShardedTrafficStats::new(t * SHARDS_PER_WORKER);
                s.par_ingest(&records, t);
                black_box(s)
            })
        });
    }

    // Phase 2: pipeline only, over pre-aggregated stats.
    group.bench_function("pipeline/serial", |b| {
        b.iter(|| black_box(pipeline::run(&flat, &rib, rate, 1, &pc)))
    });
    for (t, stats) in &sharded_by_threads {
        group.bench_function(format!("pipeline/sharded/{t}thr"), |b| {
            b.iter(|| black_box(engine.run_sharded(stats, &rib, rate, 1, &pc, *t)))
        });
    }

    // End-to-end: records in, classification out.
    group.bench_function("end_to_end/serial", |b| {
        b.iter(|| {
            let stats = TrafficStats::from_records(&records);
            black_box(pipeline::run(&stats, &rib, rate, 1, &pc))
        })
    });
    for &t in &THREADS {
        group.bench_function(format!("end_to_end/sharded/{t}thr"), |b| {
            b.iter(|| {
                let mut s = ShardedTrafficStats::new(t * SHARDS_PER_WORKER);
                s.par_ingest(&records, t);
                black_box(engine.run_sharded(&s, &rib, rate, 1, &pc, t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
