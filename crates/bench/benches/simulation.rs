//! Criterion bench: simulation-side kernels — one full day of traffic
//! through the capture set (the cost floor of every experiment), traffic
//! generation alone, and per-/24 stats aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use mt_bench::harness::{Profile, World};
use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_flow::{FlowRecord, TrafficStats};
use mt_traffic::{generate_day, CaptureSet, EmissionSink, FlowEmission, SpoofFloodEmission};
use mt_types::{Day, Ipv4, SimTime};
use std::hint::black_box;

struct NullSink {
    emissions: u64,
}

impl EmissionSink for NullSink {
    fn flow(&mut self, _: &FlowEmission) {
        self.emissions += 1;
    }
    fn spoof_flood(&mut self, _: &SpoofFloodEmission) {
        self.emissions += 1;
    }
}

fn bench_simulation(c: &mut Criterion) {
    let world = World::new(Profile::Small, 42);
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("generate_day_small", |b| {
        b.iter(|| {
            let mut sink = NullSink { emissions: 0 };
            generate_day(&world.net, &world.traffic, Day(0), &mut sink);
            black_box(sink.emissions)
        })
    });
    group.bench_function("capture_day_small_all_observers", |b| {
        b.iter(|| {
            let mut capture = CaptureSet::new(
                &world.net,
                Day(0),
                &world.spoof,
                DEFAULT_SIZE_THRESHOLD,
                true,
            );
            generate_day(&world.net, &world.traffic, Day(0), &mut capture);
            black_box(
                capture
                    .vantages
                    .iter()
                    .map(|v| v.sampled_flows)
                    .sum::<u64>(),
            )
        })
    });
    group.finish();
}

fn bench_stats_ingest(c: &mut Criterion) {
    let records: Vec<FlowRecord> = (0..100_000u32)
        .map(|i| FlowRecord {
            start: SimTime(u64::from(i) % 86_400),
            src: Ipv4(0x0900_0000 | (i % 4_096)),
            dst: Ipv4(i.wrapping_mul(0x9e37_79b9)),
            src_port: 1024,
            dst_port: 23,
            protocol: if i % 11 == 0 { 17 } else { 6 },
            tcp_flags: 2,
            packets: 1 + u64::from(i % 5),
            octets: 40 * (1 + u64::from(i % 5)),
        })
        .collect();
    let mut group = c.benchmark_group("stats");
    group.sample_size(20);
    group.throughput(criterion::Throughput::Elements(records.len() as u64));
    group.bench_function("ingest_100k_records", |b| {
        b.iter(|| {
            let mut s = TrafficStats::new();
            for r in &records {
                s.ingest(r);
            }
            black_box(s.dst_block_count())
        })
    });
    group.bench_function("ingest_sweep_100k_records", |b| {
        b.iter(|| {
            let mut s = TrafficStats::new();
            for (i, r) in records.iter().enumerate() {
                s.ingest_sweep(r, i as u64);
            }
            black_box(s.dst_block_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_stats_ingest);
criterion_main!(benches);
