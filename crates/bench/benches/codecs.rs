//! Criterion bench: wire codecs — IPFIX-lite encode/decode, pcap
//! write/read, and IPv4/TCP packet emit/parse with checksums.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mt_types::Ipv4;
use mt_wire::ipfix::{self, IpfixFlow};
use mt_wire::{ipv4, pcap, tcp, IpProtocol};
use std::hint::black_box;

fn sample_flows(n: u32) -> Vec<IpfixFlow> {
    (0..n)
        .map(|i| IpfixFlow {
            src: Ipv4(0x0900_0000 + i),
            dst: Ipv4(0x1400_0000 + i.rotate_left(8)),
            src_port: 1024 + (i % 60_000) as u16,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 0x02,
            packets: 1 + u64::from(i % 7),
            octets: 40 * (1 + u64::from(i % 7)),
            start_secs: 86_400 + i,
        })
        .collect()
}

fn bench_ipfix(c: &mut Criterion) {
    let flows = sample_flows(10_000);
    let mut group = c.benchmark_group("ipfix");
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.sample_size(20);
    group.bench_function("encode_10k", |b| {
        b.iter(|| {
            let mut seq = 0;
            black_box(ipfix::encode_messages(&flows, 0, 1, &mut seq, 400))
        })
    });
    let mut seq = 0;
    let messages = ipfix::encode_messages(&flows, 0, 1, &mut seq, 400);
    group.bench_function("decode_10k", |b| {
        b.iter(|| {
            let mut collector = ipfix::Collector::new();
            let mut out = Vec::with_capacity(flows.len());
            for m in &messages {
                collector.decode_message(m, &mut out).unwrap();
            }
            black_box(out.len())
        })
    });
    group.finish();
}

fn craft_syn(i: u32) -> Vec<u8> {
    let src = Ipv4(0x0900_0000 + i);
    let dst = Ipv4(0x1400_0000 + i);
    let t = tcp::Repr::syn(40_000, 23, i);
    let ip = ipv4::Repr {
        src,
        dst,
        protocol: IpProtocol::Tcp,
        payload_len: t.buffer_len(),
        ttl: 64,
    };
    let mut buf = vec![0u8; ip.buffer_len()];
    let mut seg = tcp::Segment::new_unchecked(&mut buf[ipv4::HEADER_LEN..]);
    t.emit(&mut seg, src, dst);
    let mut packet = ipv4::Packet::new_unchecked(&mut buf);
    ip.emit(&mut packet);
    buf
}

fn bench_packets(c: &mut Criterion) {
    let mut group = c.benchmark_group("packets");
    group.sample_size(30);
    group.bench_function("craft_syn_40b", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(craft_syn(i))
        })
    });
    let packet = craft_syn(7);
    group.bench_function("parse_and_verify_syn", |b| {
        b.iter(|| {
            let p = ipv4::Packet::new_checked(&packet[..]).unwrap();
            assert!(p.verify_checksum());
            let seg = tcp::Segment::new_checked(p.payload()).unwrap();
            black_box(seg.verify_checksum(p.src(), p.dst()))
        })
    });
    group.finish();
}

fn bench_pcap(c: &mut Criterion) {
    let packets: Vec<Vec<u8>> = (0..5_000).map(craft_syn).collect();
    let mut group = c.benchmark_group("pcap");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.sample_size(20);
    group.bench_function("write_5k", |b| {
        b.iter(|| {
            let mut w = pcap::Writer::new(Vec::new(), pcap::LINKTYPE_RAW).unwrap();
            for (i, p) in packets.iter().enumerate() {
                w.write_packet(i as u32, 0, p).unwrap();
            }
            black_box(w.finish().unwrap().len())
        })
    });
    let mut w = pcap::Writer::new(Vec::new(), pcap::LINKTYPE_RAW).unwrap();
    for (i, p) in packets.iter().enumerate() {
        w.write_packet(i as u32, 0, p).unwrap();
    }
    let file = w.finish().unwrap();
    group.bench_function("read_5k", |b| {
        b.iter(|| {
            let r = pcap::Reader::new(&file[..]).unwrap();
            black_box(r.records().count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ipfix, bench_packets, bench_pcap);
criterion_main!(benches);
