//! Memory bench: the columnar per-/24 store vs the hashmap backend on
//! synthetic day windows, measured by *peak RSS* and wall-clock.
//!
//! Two fill regimes are measured, because they favor different
//! backends and a single number would mislead:
//!
//! - `sparse_day` — a full-IPv4 announced space (~14.4M slots) where
//!   only a quarter of the blocks see traffic. Dense columns pay for
//!   every announced row; the hashmap pays only for touched blocks.
//! - `dense_day` — background radiation touching ~95% of the
//!   announced space, the regime real telescopes operate in. Here the
//!   per-entry hashmap overheads (hashing, table slack, per-block
//!   allocations) dominate and the columns win.
//!
//! Peak RSS (`VmHWM` in `/proc/self/status`) is a per-process
//! high-water mark that never goes back down, so measuring two
//! backends in one process would charge the second with the first's
//! peak. Each backend/group pair therefore runs in a child process
//! (this binary re-executed with `--child`), which reports its own
//! numbers as one JSON line on stdout.
//!
//! Like `hotpath`, the harness is hand-rolled: it must emit
//! machine-readable `BENCH_columnar.json` (path overridable via the
//! `BENCH_COLUMNAR_JSON` env var) so CI can smoke-run it and validate
//! both backends. With no `--bench` flag (as under `cargo test`) or
//! with `--smoke` it uses tiny sizes; under `cargo bench` it uses
//! full-scale slot spaces.

use mt_flow::{FlowRecord, ShardedTrafficStats, StatsLayout, TrafficView};
use mt_types::mix::mix3;
use mt_types::{Asn, Ipv4, Prefix, PrefixTrie, RibIndex, SimTime, Slot24Index};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct Variant {
    name: String,
    wall_ms: f64,
    peak_rss_mb: f64,
    dst_blocks: u64,
}

#[derive(Serialize)]
struct Group {
    group: &'static str,
    /// Announced /24s in the synthetic RIB (columnar rows).
    slots: u64,
    /// Ingested flow records per backend.
    records: u64,
    variants: Vec<Variant>,
    /// Hashmap peak RSS over columnar peak RSS (>1 = columnar smaller).
    rss_ratio: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    groups: Vec<Group>,
}

#[derive(Clone, Copy)]
struct Sizes {
    /// /16s to announce (each contributes 256 slots).
    slash16s: u32,
    records: u64,
    shards: usize,
}

struct GroupSpec {
    name: &'static str,
    smoke: Sizes,
    full: Sizes,
}

const GROUPS: [GroupSpec; 2] = [
    GroupSpec {
        name: "sparse_day",
        smoke: Sizes {
            slash16s: 32,
            records: 2_000,
            shards: 4,
        },
        // The whole usable unicast space (220 /8s, ~14.4M slots) at a
        // flow volume touching ~25% of it.
        full: Sizes {
            slash16s: 220 * 256,
            records: 4_000_000,
            shards: 8,
        },
    },
    GroupSpec {
        name: "dense_day",
        smoke: Sizes {
            slash16s: 4,
            records: 20_000,
            shards: 4,
        },
        // 64 /8s (~4.2M slots) under enough radiation to touch ~95%
        // of the announced blocks.
        full: Sizes {
            slash16s: 64 * 256,
            records: 12_000_000,
            shards: 8,
        },
    },
];

/// A deterministic announced space of `slash16s` /16 prefixes packed
/// from 1.0.0.0 upward, skipping multicast and above.
fn slot_index(slash16s: u32) -> Slot24Index {
    let mut trie = PrefixTrie::new();
    let mut added = 0u32;
    let mut idx = 1u32 << 8; // /16 index of 1.0.0.0
    while added < slash16s && idx < (224u32 << 8) {
        let base = Ipv4(idx << 16);
        trie.insert(
            Prefix::new(base, 16).expect("aligned /16"),
            Asn(64_512 + added),
        );
        added += 1;
        idx += 1;
    }
    Slot24Index::build(&RibIndex::build(&trie))
}

/// Both destination and source are drawn from the announced space —
/// the destination uniformly (scanners sweep everything), the source
/// from routed space like real (or plausibly forged) senders.
fn record(i: u64, slots: &Slot24Index) -> FlowRecord {
    let n = u64::from(slots.num_slots());
    let dst_block = slots.block_of((mix3(0x51, i, 1) % n) as u32);
    let src_block = slots.block_of((mix3(0x51, i, 2) % n) as u32);
    FlowRecord {
        start: SimTime(i),
        src: src_block.addr((mix3(0x51, i, 5) & 0xff) as u8),
        dst: dst_block.addr((mix3(0x51, i, 3) & 0x3f) as u8),
        src_port: 40_000,
        dst_port: (mix3(0x51, i, 4) % 1024) as u16,
        protocol: if i.is_multiple_of(5) { 17 } else { 6 },
        tcp_flags: 2,
        packets: 1 + i % 4,
        octets: 40 * (1 + i % 4),
    }
}

/// `VmHWM` (peak resident set) of this process, in megabytes.
fn peak_rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Child-process body: ingest the synthetic window into one backend
/// and print `{name, wall_ms, peak_rss_mb, dst_blocks}` on stdout.
fn run_child(backend: &str, sizes: &Sizes) {
    let slots = Arc::new(slot_index(sizes.slash16s));
    let layout = match backend {
        "hashmap" => StatsLayout::Map,
        "columnar" => StatsLayout::Columnar(Arc::clone(&slots)),
        other => panic!("unknown backend {other:?}"),
    };
    let start = Instant::now();
    let mut stats = ShardedTrafficStats::with_layout(sizes.shards, 100, layout);
    let records: Vec<FlowRecord> = (0..sizes.records).map(|i| record(i, &slots)).collect();
    stats.par_ingest(&records, sizes.shards);
    drop(records);
    // Touch the read path so lazily-faulted pages are charged.
    let dst_blocks = stats.iter_dst().count() as u64;
    black_box(stats.total_packets());
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let v = Variant {
        name: backend.to_owned(),
        wall_ms,
        peak_rss_mb: peak_rss_mb(),
        dst_blocks,
    };
    println!("{}", serde_json::to_string(&v).expect("variant serializes"));
}

fn spawn_child(backend: &str, group: &str, mode: &str) -> Variant {
    let exe = std::env::current_exe().expect("own path");
    let out = std::process::Command::new(exe)
        .args(["--child", backend, group, mode])
        .output()
        .expect("spawn child bench");
    assert!(
        out.status.success(),
        "child {backend}/{group} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("child output is utf-8");
    let line = stdout
        .lines()
        .last()
        .expect("child printed one JSON line")
        .to_owned();
    serde_json::from_str(&line).expect("child line parses")
}

fn sizes_for(spec: &GroupSpec, mode: &str) -> Sizes {
    if mode == "full" {
        spec.full
    } else {
        spec.smoke
    }
}

fn run_group(spec: &GroupSpec, mode: &'static str) -> Group {
    let sizes = sizes_for(spec, mode);
    let hashmap = spawn_child("hashmap", spec.name, mode);
    let columnar = spawn_child("columnar", spec.name, mode);
    assert_eq!(
        hashmap.dst_blocks, columnar.dst_blocks,
        "backends must agree on the touched block set"
    );
    for v in [&hashmap, &columnar] {
        println!(
            "{}/{}: {:.0} ms, peak RSS {:.1} MB, {} dst /24s",
            spec.name, v.name, v.wall_ms, v.peak_rss_mb, v.dst_blocks
        );
    }
    let rss_ratio = hashmap.peak_rss_mb / columnar.peak_rss_mb.max(0.001);
    println!(
        "{}: rss ratio (hashmap / columnar) {rss_ratio:.2}x",
        spec.name
    );
    Group {
        group: spec.name,
        slots: u64::from(sizes.slash16s) * 256,
        records: sizes.records,
        variants: vec![hashmap, columnar],
        rss_ratio,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let (backend, group, mode) = (&args[i + 1], &args[i + 2], &args[i + 3]);
        let spec = GROUPS
            .iter()
            .find(|s| s.name == group)
            .expect("known group name");
        run_child(backend, &sizes_for(spec, mode));
        return;
    }
    let smoke = !args.iter().any(|a| a == "--bench")
        || args.iter().any(|a| a == "--smoke" || a == "--test");
    let mode = if smoke { "smoke" } else { "full" };
    println!("columnar memory bench ({mode} mode)");

    let report = Report {
        bench: "columnar",
        mode,
        groups: GROUPS.iter().map(|s| run_group(s, mode)).collect(),
    };
    let path =
        std::env::var("BENCH_COLUMNAR_JSON").unwrap_or_else(|_| "BENCH_columnar.json".into());
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
