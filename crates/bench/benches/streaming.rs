//! Criterion bench: the streaming path (collector → windowed ingest →
//! per-window pipeline) at 1/2/4/8 ingest threads against the batch
//! baseline over the same records.
//!
//! The streaming iterations do strictly more work than the batch one —
//! IPFIX framing and decoding, watermark gating, queue hand-off — so on
//! a single core they measure the overhead of continuous operation; on
//! multi-core hardware the ingest workers overlap decoding with
//! aggregation and the gap narrows. Both paths end in the same
//! `run_sharded` call, and their results are bit-identical (the
//! integration suite asserts this; the bench only measures).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mt_bench::harness::{Profile, World};
use mt_core::{pipeline, PipelineEngine};
use mt_flow::stats::DEFAULT_SIZE_THRESHOLD;
use mt_flow::ShardedTrafficStats;
use mt_stream::{OverflowPolicy, StreamConfig, StreamService};
use mt_traffic::{generate_day, CaptureSet};
use mt_types::Day;
use std::hint::black_box;

const INGEST_THREADS: [usize; 4] = [1, 2, 4, 8];
/// TCP-segment-sized chunks: the collector sees realistic fragmentation.
const CHUNK: usize = 1460;

/// Per-exporter IPFIX byte streams for one day, plus the record count.
fn exporter_streams(world: &World) -> (Vec<(String, Vec<u8>)>, u64) {
    let mut capture = CaptureSet::new(
        &world.net,
        Day(0),
        &world.spoof,
        DEFAULT_SIZE_THRESHOLD,
        false,
    );
    capture.retain_all_records();
    generate_day(&world.net, &world.traffic, Day(0), &mut capture);
    let mut streams = Vec::new();
    let mut total = 0u64;
    for vo in &capture.vantages {
        total += vo.records.as_ref().map_or(0, |r| r.len() as u64);
        let mut seq = 0;
        let bytes: Vec<u8> = vo
            .export_ipfix(0, &mut seq, 64)
            .expect("records retained")
            .into_iter()
            .flatten()
            .collect();
        streams.push((vo.vp.code.clone(), bytes));
    }
    (streams, total)
}

fn stream_config(world: &World, ingest_threads: usize) -> StreamConfig {
    StreamConfig {
        ingest_threads,
        sampling_rate: world.sampling_rate(),
        overflow: OverflowPolicy::Block,
        ..StreamConfig::default()
    }
}

fn bench_streaming(c: &mut Criterion) {
    let world = World::new(Profile::Small, 42);
    let (streams, records) = exporter_streams(&world);
    let rib = world.net.rib(Day(0));
    let rate = world.sampling_rate();
    let pc = pipeline::PipelineConfig::default();
    let engine = PipelineEngine::standard();
    let cfg0 = StreamConfig::default();

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records));

    // Batch baseline: decode-free ingest of the same records + pipeline.
    let batch_records: Vec<_> = {
        let mut capture = CaptureSet::new(
            &world.net,
            Day(0),
            &world.spoof,
            DEFAULT_SIZE_THRESHOLD,
            false,
        );
        capture.retain_all_records();
        generate_day(&world.net, &world.traffic, Day(0), &mut capture);
        capture
            .vantages
            .into_iter()
            .flat_map(|vo| vo.records.unwrap_or_default())
            .collect()
    };
    group.bench_function("batch", |b| {
        b.iter(|| {
            let stats = ShardedTrafficStats::from_records(cfg0.num_shards, &batch_records);
            black_box(engine.run_sharded(&stats, &rib, rate, 1, &pc, 2))
        })
    });

    // Streaming end-to-end: bytes in, window report out.
    for &t in &INGEST_THREADS {
        group.bench_function(format!("stream/{t}thr"), |b| {
            b.iter(|| {
                let rib = rib.clone();
                let mut svc = StreamService::start(stream_config(&world, t), move |_| rib.clone());
                // Round-robin the exporters in transport-sized chunks, the
                // arrival pattern a live collector sees.
                let mut cursors: Vec<usize> = vec![0; streams.len()];
                loop {
                    let mut progressed = false;
                    for (i, (name, bytes)) in streams.iter().enumerate() {
                        let at = cursors[i];
                        if at < bytes.len() {
                            let end = (at + CHUNK).min(bytes.len());
                            svc.push_chunk(name, &bytes[at..end]);
                            cursors[i] = end;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                black_box(svc.finish())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
