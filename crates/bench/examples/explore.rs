//! Exploratory end-to-end run used while calibrating the scenario.
//! Run: `cargo run --release -p mt-bench --example explore [paper]`

use mt_core::{analysis, classifier, eval, pipeline, SpoofTolerance};
use mt_netmodel::{AuxDatasets, Internet, InternetConfig};
use mt_traffic::{generate_day, CaptureSet, SpoofSpace, TrafficConfig};
use mt_types::Day;

fn main() {
    let paper = std::env::args().any(|a| a == "paper");
    let config = if paper {
        InternetConfig::paper()
    } else {
        InternetConfig::small()
    };
    let t0 = std::time::Instant::now();
    let net = Internet::generate(config, 42);
    let cfg = TrafficConfig::default_profile();
    let spoof = SpoofSpace::new(&net, cfg.spoof_routed_bias);
    println!(
        "internet: {} ases, {} announcements, {} announced /24s ({} dark / {} active) [{:?}]",
        net.ases.len(),
        net.announcements.len(),
        net.announced_blocks(),
        net.dark_truth.len(),
        net.active_truth.len(),
        t0.elapsed()
    );

    let day = Day(0);
    let t0 = std::time::Instant::now();
    let mut capture = CaptureSet::new(
        &net,
        day,
        &spoof,
        mt_flow::stats::DEFAULT_SIZE_THRESHOLD,
        true,
    );
    generate_day(&net, &cfg, day, &mut capture);
    println!("day simulated in {:?}", t0.elapsed());

    // Telescope stats (Table 2 shape).
    for t in &capture.telescopes {
        println!(
            "{}: pkts/blk/day={:.0} tcp_share={:.2}% avg_tcp={:?}",
            t.telescope.code,
            t.avg_packets_per_block(),
            t.tcp_share() * 100.0,
            t.avg_tcp_size()
        );
        println!("   top ports: {:?}", t.top_ports(10));
    }

    // Classifier calibration (Table 3 shape).
    if let Some(isp) = &capture.isp {
        let scope: mt_types::Block24Set = net
            .announcements
            .iter()
            .filter(|a| a.as_idx == isp.as_idx)
            .flat_map(|a| a.prefix.blocks24())
            .collect();
        let labels = classifier::CalibrationLabels::derive(&isp.stats, &scope, 2_000);
        println!(
            "calibration: scope={} receiving={} dark={} active={}",
            scope.len(),
            labels.receiving,
            labels.dark.len(),
            labels.active.len()
        );
        for row in classifier::sweep(&isp.stats, &labels, &[40, 42, 44, 46]) {
            println!(
                "  {:?}@{}: fpr={:.2}% fnr={:.2}% f1={:.2}%",
                row.feature,
                row.threshold,
                row.matrix.fpr() * 100.0,
                row.matrix.fnr() * 100.0,
                row.matrix.f1() * 100.0
            );
        }
    }

    // Pipeline per VP + all.
    let rib = net.rib(day);
    let pc = pipeline::PipelineConfig::default();
    let mut all_stats: Option<mt_flow::ShardedTrafficStats> = None;
    for vo in &capture.vantages {
        let r = pipeline::run(&vo.stats, &rib, vo.vp.sampling_rate, 1, &pc);
        let gt = eval::GroundTruthReport::evaluate(&r.dark, &net, day, 1);
        println!(
            "{}: flows={} funnel={:?} dark={} unclean={} gray={} precision={:.1}% recall={:.1}%",
            vo.vp.code,
            vo.sampled_flows,
            r.funnel,
            r.dark.len(),
            r.unclean.len(),
            r.gray.len(),
            gt.precision() * 100.0,
            gt.recall() * 100.0,
        );
        match &mut all_stats {
            None => all_stats = Some(vo.stats.clone()),
            Some(s) => s.merge(&vo.stats),
        }
    }
    let all = all_stats.unwrap();
    let tol = SpoofTolerance::estimate(&all, net.unrouted_octets(), 0.9999);
    println!("spoof tolerance: {tol:?}");
    let rate = net.vantage_points[0].sampling_rate;
    let r = pipeline::run(&all, &rib, rate, 1, &pc);
    let gt = eval::GroundTruthReport::evaluate(&r.dark, &net, day, 1);
    println!(
        "ALL: funnel={:?} dark={} unclean={} gray={} precision={:.1}% recall={:.1}%",
        r.funnel,
        r.dark.len(),
        r.unclean.len(),
        r.gray.len(),
        gt.precision() * 100.0,
        gt.recall() * 100.0
    );
    let aux = AuxDatasets::generate(&net);
    let check = eval::ActivityCheck::run(&r.dark, &aux);
    println!(
        "aux FP share: {:.1}% ({} of {})",
        check.fp_share() * 100.0,
        check.active_in_aux,
        check.inferred
    );
    let summary = analysis::summarize("All", &eval::scrub(&r.dark, &aux), &net);
    println!("scrubbed summary: {summary:?}");
}
