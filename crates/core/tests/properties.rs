//! Property-based tests for the inference pipeline's invariants.

use mt_core::{baseline, pipeline, PipelineEngine};
use mt_flow::{FlowRecord, ShardedTrafficStats, TrafficStats};
use mt_types::{Asn, Ipv4, Prefix, PrefixTrie, SimTime};
use proptest::prelude::*;

/// Records constrained to a handful of /16s so blocks actually collide
/// and every classification outcome is reachable.
fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        0u8..4,       // src /16 selector
        any::<u16>(), // src low bits
        0u8..4,       // dst /16 selector
        any::<u16>(), // dst low bits
        prop_oneof![Just(6u8), Just(17)],
        1u64..200,
        prop_oneof![Just(40u64), Just(48), Just(200), Just(1_400)],
    )
        .prop_map(|(s16, slow, d16, dlow, proto, packets, size)| FlowRecord {
            start: SimTime(0),
            src: Ipv4(0x1400_0000 | (u32::from(s16) << 16) | u32::from(slow)),
            dst: Ipv4(0x1400_0000 | (u32::from(d16) << 16) | u32::from(dlow)),
            src_port: 40_000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: 2,
            packets,
            octets: packets * size,
        })
}

fn rib() -> PrefixTrie<Asn> {
    [("20.0.0.0/8".parse::<Prefix>().unwrap(), Asn(65_000))]
        .into_iter()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn classification_partitions_the_survivors(
        records in proptest::collection::vec(arb_record(), 1..150),
    ) {
        let stats = TrafficStats::from_records(&records);
        let r = pipeline::run(&stats, &rib(), 1, 1, &pipeline::PipelineConfig::default());
        // Disjoint classes.
        prop_assert_eq!(r.dark.intersection_len(&r.unclean), 0);
        prop_assert_eq!(r.dark.intersection_len(&r.gray), 0);
        prop_assert_eq!(r.unclean.intersection_len(&r.gray), 0);
        // Classes cover exactly the post-volume survivors.
        prop_assert_eq!(r.classified() as u64, r.funnel.after_volume());
        // Funnel is monotone.
        let f = &r.funnel;
        prop_assert!(f.seen() >= f.after_tcp());
        prop_assert!(f.after_tcp() >= f.after_avg());
        prop_assert!(f.after_avg() >= f.after_origin());
        prop_assert!(f.after_origin() >= f.after_special());
        prop_assert!(f.after_special() >= f.after_routed());
        prop_assert!(f.after_routed() >= f.after_volume());
    }

    #[test]
    fn sharded_engine_is_equivalent_to_serial_run(
        records in proptest::collection::vec(arb_record(), 1..150),
    ) {
        // The tentpole equivalence: the staged engine over a sharded
        // accumulator — any shard count, any worker count — reproduces
        // the serial pipeline bit for bit: same dark/unclean/gray sets,
        // same funnel counts.
        let flat = TrafficStats::from_records(&records);
        let rib = rib();
        let pc = pipeline::PipelineConfig::default();
        let serial = pipeline::run(&flat, &rib, 1, 1, &pc);
        let engine = PipelineEngine::standard();
        for shards in [1usize, 4, 16] {
            let mut sharded = ShardedTrafficStats::new(shards);
            sharded.par_ingest(&records, shards.min(4));
            for threads in [1usize, 4] {
                let par = engine.run_sharded(&sharded, &rib, 1, 1, &pc, threads);
                prop_assert_eq!(&par.dark, &serial.dark, "dark: shards={} threads={}", shards, threads);
                prop_assert_eq!(&par.unclean, &serial.unclean, "unclean: shards={} threads={}", shards, threads);
                prop_assert_eq!(&par.gray, &serial.gray, "gray: shards={} threads={}", shards, threads);
                prop_assert_eq!(&par.funnel, &serial.funnel, "funnel: shards={} threads={}", shards, threads);
            }
        }
    }

    #[test]
    fn strict_dark_is_a_subset_of_the_origin_only_baseline(
        records in proptest::collection::vec(arb_record(), 1..150),
    ) {
        let stats = TrafficStats::from_records(&records);
        let rib = rib();
        let full = pipeline::run(&stats, &rib, 1, 1, &pipeline::PipelineConfig {
            // A huge volume cap isolates the subset relation from the
            // volume filter (the baseline has none).
            volume_threshold_per_day: f64::MAX,
            ..pipeline::PipelineConfig::default()
        });
        let base = baseline::origin_only(&stats, &rib);
        prop_assert_eq!(
            full.dark.difference(&base).len(),
            0,
            "pipeline dark must be within the baseline's set"
        );
    }

    #[test]
    fn raising_the_tolerance_never_shrinks_dark(
        records in proptest::collection::vec(arb_record(), 1..120),
        tol_low in 0u64..3,
        extra in 1u64..5,
    ) {
        let stats = TrafficStats::from_records(&records);
        let rib = rib();
        let run_with = |tol| pipeline::run(&stats, &rib, 1, 1, &pipeline::PipelineConfig {
            spoof_tolerance_packets: tol,
            ..pipeline::PipelineConfig::default()
        });
        let low = run_with(tol_low);
        let high = run_with(tol_low + extra);
        prop_assert!(high.dark.len() >= low.dark.len());
        prop_assert_eq!(low.dark.difference(&high.dark).len(), 0,
            "every strictly-dark block stays dark under a looser tolerance");
    }

    #[test]
    fn raising_the_size_threshold_never_shrinks_the_avg_survivors(
        records in proptest::collection::vec(arb_record(), 1..120),
        t1 in 40u16..100,
        extra in 1u16..100,
    ) {
        let stats = TrafficStats::from_records(&records);
        let rib = rib();
        let run_with = |t: u16| pipeline::run(&stats, &rib, 1, 1, &pipeline::PipelineConfig {
            avg_size_threshold: f64::from(t),
            ..pipeline::PipelineConfig::default()
        });
        let low = run_with(t1);
        let high = run_with(t1 + extra);
        prop_assert!(high.funnel.after_avg() >= low.funnel.after_avg());
    }

    #[test]
    fn sampling_rate_scales_the_volume_filter_only(
        records in proptest::collection::vec(arb_record(), 1..120),
    ) {
        // With an infinite cap the sampling rate is irrelevant.
        let stats = TrafficStats::from_records(&records);
        let rib = rib();
        let pc = pipeline::PipelineConfig {
            volume_threshold_per_day: f64::MAX,
            ..pipeline::PipelineConfig::default()
        };
        let a = pipeline::run(&stats, &rib, 1, 1, &pc);
        let b = pipeline::run(&stats, &rib, 10_000, 1, &pc);
        prop_assert_eq!(a.dark, b.dark);
        prop_assert_eq!(a.gray, b.gray);
    }
}
