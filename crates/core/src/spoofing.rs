//! The spoofing tolerance of Section 7.2.
//!
//! Spoofers draw forged sources across routed *and unrouted* space, so
//! traffic "from" known-unrouted /8s is a clean baseline for how many
//! spoofed packets an arbitrary /24 should expect to be blamed for. The
//! paper computes the 99.99th percentile of per-/24 source packet counts
//! inside two unrouted /8s and allows that many packets before a block
//! is disqualified as originating.

use mt_flow::TrafficView;
use mt_types::Block24;
use serde::{Deserialize, Serialize};

/// An estimated spoofing tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpoofTolerance {
    /// Sampled packets a /24 may "originate" before being disqualified.
    pub packets: u64,
    /// The percentile used (e.g. 0.9999).
    pub percentile: f64,
    /// Number of unrouted /24s the estimate is based on.
    pub baseline_blocks: u64,
    /// How many of those were blamed for at least one packet.
    pub polluted_blocks: u64,
}

impl SpoofTolerance {
    /// Estimates the tolerance from the window's stats and the scenario's
    /// unrouted first octets. `percentile` is typically `0.9999`.
    ///
    /// Every /24 of each unrouted /8 participates, including the (vast
    /// majority of) blocks blamed for zero packets — leaving those out
    /// would wildly overestimate the tolerance.
    pub fn estimate<V: TrafficView>(stats: &V, unrouted_octets: &[u8], percentile: f64) -> Self {
        assert!((0.0..=1.0).contains(&percentile));
        let mut counts: Vec<u64> = Vec::new();
        let mut polluted = 0u64;
        for &octet in unrouted_octets {
            let first = u32::from(octet) << 16;
            for block in first..first + (1 << 16) {
                let c = stats.src(Block24(block)).map(|s| s.packets).unwrap_or(0);
                if c > 0 {
                    polluted += 1;
                }
                counts.push(c);
            }
        }
        let baseline_blocks = counts.len() as u64;
        let packets = if counts.is_empty() {
            0
        } else {
            counts.sort_unstable();
            let rank = ((counts.len() as f64 - 1.0) * percentile).round() as usize;
            counts[rank.min(counts.len() - 1)]
        };
        SpoofTolerance {
            packets,
            percentile,
            baseline_blocks,
            polluted_blocks: polluted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::{FlowRecord, TrafficStats};
    use mt_types::{Ipv4, SimTime};

    fn spoofed_from(src: Ipv4, packets: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src,
            dst: Ipv4::new(8, 8, 8, 8),
            src_port: 1024,
            dst_port: 80,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * 40,
        }
    }

    #[test]
    fn no_spoofing_means_zero_tolerance() {
        let stats = TrafficStats::new();
        let t = SpoofTolerance::estimate(&stats, &[37, 53], 0.9999);
        assert_eq!(t.packets, 0);
        assert_eq!(t.baseline_blocks, 2 * 65_536);
        assert_eq!(t.polluted_blocks, 0);
    }

    #[test]
    fn light_pollution_keeps_tolerance_at_zero() {
        // 10 polluted blocks out of 131 072: the 99.99th percentile
        // (rank ≈ 131 059) still sits in the zero mass.
        let mut stats = TrafficStats::new();
        for i in 0..10u8 {
            stats.ingest(&spoofed_from(Ipv4::new(37, i, 0, 1), 1));
        }
        let t = SpoofTolerance::estimate(&stats, &[37, 53], 0.9999);
        assert_eq!(t.packets, 0);
        assert_eq!(t.polluted_blocks, 10);
    }

    #[test]
    fn heavy_pollution_raises_tolerance() {
        // Pollute ~0.1% of the baseline blocks with 2 packets each: the
        // 99.99th percentile lands inside the polluted mass.
        let mut stats = TrafficStats::new();
        for i in 0..140u32 {
            let src = Ipv4((37 << 24) | (i << 8) | 1);
            stats.ingest(&spoofed_from(src, 2));
        }
        let t = SpoofTolerance::estimate(&stats, &[37], 0.9999);
        assert_eq!(t.baseline_blocks, 65_536);
        assert_eq!(t.polluted_blocks, 140);
        assert_eq!(t.packets, 2);
    }

    #[test]
    fn percentile_one_returns_the_max() {
        let mut stats = TrafficStats::new();
        stats.ingest(&spoofed_from(Ipv4::new(53, 1, 2, 3), 7));
        let t = SpoofTolerance::estimate(&stats, &[53], 1.0);
        assert_eq!(t.packets, 7);
    }

    #[test]
    fn routed_sources_do_not_count() {
        let mut stats = TrafficStats::new();
        // Traffic from routed space must not affect the baseline.
        stats.ingest(&spoofed_from(Ipv4::new(20, 1, 2, 3), 1_000));
        let t = SpoofTolerance::estimate(&stats, &[37, 53], 0.9999);
        assert_eq!(t.packets, 0);
        assert_eq!(t.polluted_blocks, 0);
    }
}
