//! The staged pipeline engine: the seven-step loop of Section 4.2
//! decomposed into composable [`Stage`]s.
//!
//! The engine separates three concerns the original hard-coded loop
//! tangled together:
//!
//! - **what a step decides** — each filter is a [`Stage`] returning a
//!   [`Verdict`] for one destination /24, given the block's aggregates
//!   ([`BlockCtx`]) and the run-wide environment ([`StageEnv`]);
//! - **how the funnel is accounted** — the engine counts entered/kept
//!   per stage into a [`crate::pipeline::Funnel`], so drop
//!   reasons fall out of the stage list instead of hand-maintained
//!   counters;
//! - **how blocks are traversed** — [`PipelineEngine::run`] walks any
//!   [`TrafficView`] serially, while [`PipelineEngine::run_sharded`]
//!   runs the same stage vector over each shard of a
//!   [`ShardedTrafficStats`] in parallel and folds the per-shard
//!   funnels and sets. Because every stage only reads its own block's
//!   dst/src aggregates — and sharding co-locates both halves of a
//!   block — per-shard runs partition the work exactly, and the folded
//!   result is bit-identical to the serial run.
//!
//! [`crate::pipeline::run`] remains as a thin compatibility wrapper over
//! the standard stage vector.

use crate::pipeline::{Funnel, PipelineConfig, PipelineResult};
use mt_flow::{DstRef, HostSet, ShardedTrafficStats, SrcRef, TrafficView};
use mt_obs::{Counter, Histogram, MetricsRegistry, DEFAULT_TIME_BUCKETS};
use mt_types::{Asn, Block24, Block24Set, PrefixTrie, RibIndex, SpecialRegistry};
use parking_lot::Mutex;
use std::cell::OnceCell;
use std::time::Instant;

/// A stage's decision for one candidate block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The block stays a candidate.
    Keep,
    /// The block leaves the funnel at this stage.
    Drop,
}

/// Run-wide environment shared by all stages.
pub struct StageEnv<'a> {
    /// The routed-prefix table for the observation window.
    pub rib: &'a PrefixTrie<Asn>,
    /// Flat LPM index compiled from [`rib`](Self::rib) once per run —
    /// the hot-path view the per-block stages query. Plain arrays, so
    /// sharing `&StageEnv` across shard workers stays `Sync`.
    pub rib_index: RibIndex<Asn>,
    /// RFC 6890 special-purpose registry.
    pub special: &'a SpecialRegistry,
    /// Pipeline thresholds.
    pub config: &'a PipelineConfig,
    /// Step-6 cap on *sampled* packets, already scaled by window length
    /// and sampling rate.
    pub volume_cap: f64,
}

/// One destination /24 under evaluation, with lazily derived host sets.
///
/// The source-side lookup and the originating/clean host computations
/// are memoized so they run at most once per block no matter how many
/// stages (or the final classification) consult them — and not at all
/// for blocks dropped before step 3, matching the original loop's cost
/// profile.
pub struct BlockCtx<'a> {
    /// The block under evaluation.
    pub block: Block24,
    /// Receive-side aggregates for the block (a cheap by-value view —
    /// the columnar backend has no materialized struct to borrow).
    pub dst: DstRef<'a>,
    src_lookup: &'a dyn Fn(Block24) -> Option<SrcRef>,
    src: OnceCell<Option<SrcRef>>,
    originating: OnceCell<HostSet>,
}

impl<'a> BlockCtx<'a> {
    /// Builds a context around one block's aggregates.
    pub fn new(
        block: Block24,
        dst: DstRef<'a>,
        src_lookup: &'a dyn Fn(Block24) -> Option<SrcRef>,
    ) -> Self {
        BlockCtx {
            block,
            dst,
            src_lookup,
            src: OnceCell::new(),
            originating: OnceCell::new(),
        }
    }

    /// Send-side aggregates of this block, if it originated anything.
    pub fn src(&self) -> Option<SrcRef> {
        *self.src.get_or_init(|| (self.src_lookup)(self.block))
    }

    /// Hosts disqualified as originators: the block's originating hosts
    /// if its sampled origination exceeds the spoofing tolerance,
    /// otherwise none (light origination is forgiven as spoofed blame).
    pub fn originating(&self, env: &StageEnv) -> &HostSet {
        self.originating.get_or_init(|| {
            let origin_pkts = self.src().map(|s| s.packets).unwrap_or(0);
            if origin_pkts > env.config.spoof_tolerance_packets {
                self.src().map(|s| s.originating).unwrap_or(HostSet::EMPTY)
            } else {
                HostSet::EMPTY
            }
        })
    }

    /// Hosts that received only small TCP and are not disqualified as
    /// originators — the "clean receiving hosts" of step 3.
    pub fn clean_hosts(&self, env: &StageEnv) -> HostSet {
        self.dst
            .received_tcp
            .difference(&self.dst.received_big_tcp)
            .difference(self.originating(env))
    }
}

/// One filtering step of the inference funnel.
pub trait Stage: Send + Sync {
    /// Stable stage name, used for funnel accounting and reporting.
    fn name(&self) -> &'static str;

    /// Decides whether `ctx.block` survives this stage.
    fn apply(&self, ctx: &BlockCtx<'_>, env: &StageEnv<'_>) -> Verdict;
}

fn verdict(keep: bool) -> Verdict {
    if keep {
        Verdict::Keep
    } else {
        Verdict::Drop
    }
}

/// Step 1: a block with no sampled TCP cannot be fingerprinted.
pub struct TcpStage;

impl Stage for TcpStage {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn apply(&self, ctx: &BlockCtx<'_>, _env: &StageEnv<'_>) -> Verdict {
        verdict(ctx.dst.tcp_packets > 0)
    }
}

/// Step 2: the block-level average TCP size must stay at or under the
/// fingerprint threshold (Section 4.1).
pub struct AvgSizeStage;

impl Stage for AvgSizeStage {
    fn name(&self) -> &'static str {
        "avg_size"
    }

    fn apply(&self, ctx: &BlockCtx<'_>, env: &StageEnv<'_>) -> Verdict {
        match ctx.dst.avg_tcp_size() {
            Some(avg) => verdict(avg <= env.config.avg_size_threshold),
            None => Verdict::Drop,
        }
    }
}

/// Step 3: after disqualifying originating hosts (beyond the spoofing
/// tolerance), at least one clean receiving host must remain.
pub struct CleanOriginStage;

impl Stage for CleanOriginStage {
    fn name(&self) -> &'static str {
        "clean_origin"
    }

    fn apply(&self, ctx: &BlockCtx<'_>, env: &StageEnv<'_>) -> Verdict {
        verdict(!ctx.clean_hosts(env).is_empty())
    }
}

/// Step 4: RFC 6890 special-purpose space is dropped.
pub struct SpecialStage;

impl Stage for SpecialStage {
    fn name(&self) -> &'static str {
        "special"
    }

    fn apply(&self, ctx: &BlockCtx<'_>, env: &StageEnv<'_>) -> Verdict {
        verdict(!env.special.is_special_block(ctx.block))
    }
}

/// Step 5: the block must be globally routed during the window.
pub struct RoutedStage;

impl Stage for RoutedStage {
    fn name(&self) -> &'static str {
        "routed"
    }

    fn apply(&self, ctx: &BlockCtx<'_>, env: &StageEnv<'_>) -> Verdict {
        verdict(env.rib_index.contains_addr(ctx.block.base()))
    }
}

/// Step 6: the estimated true packet rate must stay under the per-day
/// cap (asymmetric-routing decoys).
pub struct VolumeStage;

impl Stage for VolumeStage {
    fn name(&self) -> &'static str {
        "volume"
    }

    fn apply(&self, ctx: &BlockCtx<'_>, env: &StageEnv<'_>) -> Verdict {
        verdict(ctx.dst.total_packets() as f64 <= env.volume_cap)
    }
}

/// Registry handles for one engine: per-stage funnel counters plus run
/// and per-stage timing histograms. Registered once in
/// [`PipelineEngine::with_registry`]; updates are single atomics.
struct EngineMetrics {
    runs: Counter,
    seen: Counter,
    stage_entered: Vec<Counter>,
    stage_kept: Vec<Counter>,
    run_time: Histogram,
    stage_time: Vec<Histogram>,
}

impl EngineMetrics {
    fn register(registry: &MetricsRegistry, stage_names: &[&'static str]) -> Self {
        let mut stage_entered = Vec::with_capacity(stage_names.len());
        let mut stage_kept = Vec::with_capacity(stage_names.len());
        let mut stage_time = Vec::with_capacity(stage_names.len());
        for name in stage_names {
            let labels = [("stage", *name)];
            stage_entered.push(registry.counter_with(
                "mt_pipeline_stage_entered_total",
                &labels,
                "Candidate /24s that reached this funnel stage.",
            ));
            stage_kept.push(registry.counter_with(
                "mt_pipeline_stage_kept_total",
                &labels,
                "Candidate /24s that survived this funnel stage.",
            ));
            stage_time.push(registry.histogram_with(
                "mt_pipeline_stage_nanoseconds",
                &labels,
                &DEFAULT_TIME_BUCKETS,
                "Wall-clock time spent inside this stage per engine run.",
            ));
        }
        EngineMetrics {
            runs: registry.counter("mt_pipeline_runs_total", "Completed engine runs."),
            seen: registry.counter(
                "mt_pipeline_blocks_seen_total",
                "Destination /24s entering the funnel, summed over runs.",
            ),
            stage_entered,
            stage_kept,
            run_time: registry.histogram(
                "mt_pipeline_run_nanoseconds",
                &DEFAULT_TIME_BUCKETS,
                "Wall-clock time of one full engine run.",
            ),
            stage_time,
        }
    }

    fn publish(&self, funnel: &Funnel, run_nanos: u64, stage_nanos: &[u64]) {
        self.runs.inc();
        self.seen.add(funnel.seen());
        for (i, stage) in funnel.stages().iter().enumerate() {
            self.stage_entered[i].add(stage.entered);
            self.stage_kept[i].add(stage.kept);
        }
        self.run_time.observe(run_nanos);
        for (h, nanos) in self.stage_time.iter().zip(stage_nanos) {
            h.observe(*nanos);
        }
    }
}

/// An ordered stage vector plus the traversal and accounting machinery.
pub struct PipelineEngine {
    stages: Vec<Box<dyn Stage>>,
    metrics: Option<EngineMetrics>,
}

impl Default for PipelineEngine {
    fn default() -> Self {
        Self::standard()
    }
}

impl PipelineEngine {
    /// The paper's standard six filter stages, in funnel order.
    pub fn standard() -> Self {
        Self::with_stages(vec![
            Box::new(TcpStage),
            Box::new(AvgSizeStage),
            Box::new(CleanOriginStage),
            Box::new(SpecialStage),
            Box::new(RoutedStage),
            Box::new(VolumeStage),
        ])
    }

    /// An engine over a custom stage vector (ablations, extra filters).
    pub fn with_stages(stages: Vec<Box<dyn Stage>>) -> Self {
        assert!(!stages.is_empty(), "engine needs at least one stage");
        PipelineEngine {
            stages,
            metrics: None,
        }
    }

    /// Attaches a metrics registry: every subsequent run publishes its
    /// funnel into `mt_pipeline_*` counters and records run / per-stage
    /// wall-clock histograms. The legacy [`Funnel`] in the returned
    /// [`PipelineResult`] is unchanged — the registry is a derived view
    /// of the same counts. Without a registry attached, runs take no
    /// timestamps and touch no atomics.
    pub fn with_registry(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(EngineMetrics::register(registry, &self.stage_names()));
        self
    }

    /// The stage names, in order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    fn env<'a>(
        &self,
        rib: &'a PrefixTrie<Asn>,
        special: &'a SpecialRegistry,
        sampling_rate: u32,
        days: u32,
        config: &'a PipelineConfig,
    ) -> StageEnv<'a> {
        assert!(days > 0, "observation window must cover at least one day");
        StageEnv {
            rib,
            rib_index: RibIndex::build(rib),
            special,
            config,
            volume_cap: config.volume_threshold_per_day * f64::from(days)
                / f64::from(sampling_rate),
        }
    }

    /// Runs the stage vector over every destination block of `stats`.
    ///
    /// Accepts any [`TrafficView`] — flat or sharded — and walks it on
    /// the calling thread.
    pub fn run<V: TrafficView>(
        &self,
        stats: &V,
        rib: &PrefixTrie<Asn>,
        sampling_rate: u32,
        days: u32,
        config: &PipelineConfig,
    ) -> PipelineResult {
        let special = SpecialRegistry::new();
        let env = self.env(rib, &special, sampling_rate, days, config);
        self.run_view(stats, &env)
    }

    /// Runs the stage vector over each shard of `stats` with `threads`
    /// workers, folding the per-shard funnels and block sets.
    ///
    /// Shards partition the destination blocks and carry the matching
    /// source blocks, so per-shard runs see exactly the serial run's
    /// per-block inputs; the folded funnel counts and dark/unclean/gray
    /// sets are identical to [`run`](Self::run) on the same data.
    pub fn run_sharded(
        &self,
        stats: &ShardedTrafficStats,
        rib: &PrefixTrie<Asn>,
        sampling_rate: u32,
        days: u32,
        config: &PipelineConfig,
        threads: usize,
    ) -> PipelineResult {
        assert!(threads >= 1);
        // check: allow(determinism, "wall-clock only feeds the metrics histograms; no pipeline decision or output reads it")
        let started = self.metrics.as_ref().map(|_| Instant::now());
        let special = SpecialRegistry::new();
        let env = self.env(rib, &special, sampling_rate, days, config);
        let shards = stats.shards();
        let slots: Vec<Mutex<Option<ShardRun>>> = shards.iter().map(|_| Mutex::new(None)).collect();
        let chunk = shards.len().div_ceil(threads).max(1);
        let env_ref = &env;
        let timed = self.metrics.is_some();
        crossbeam::thread::scope(|scope| {
            for (shard_chunk, slot_chunk) in shards.chunks(chunk).zip(slots.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (shard, slot) in shard_chunk.iter().zip(slot_chunk) {
                        // lock: core.engine_slot
                        *slot.lock() = Some(self.run_view_sparse(shard, env_ref, timed));
                    }
                });
            }
        })
        // check: allow(no_panic, "scope() errs only if a worker panicked; re-raising on the coordinator is intended")
        .expect("pipeline shard worker panicked");

        // Fold into three dense sets allocated once; the per-shard
        // results stay sparse so fold cost scales with the population,
        // not with shards × the 2 MiB Block24Set footprint.
        let mut folded = PipelineResult {
            dark: Block24Set::new(),
            unclean: Block24Set::new(),
            gray: Block24Set::new(),
            funnel: Funnel::with_stages(self.stage_names()),
        };
        let mut stage_nanos = vec![0u64; self.stages.len()];
        for slot in slots {
            // check: allow(no_panic, "the scope above writes every slot exactly once before joining")
            let part = slot.into_inner().expect("filled");
            for b in part.dark {
                folded.dark.insert(b);
            }
            for b in part.unclean {
                folded.unclean.insert(b);
            }
            for b in part.gray {
                folded.gray.insert(b);
            }
            folded.funnel.absorb(&part.funnel);
            for (total, part) in stage_nanos.iter_mut().zip(&part.stage_nanos) {
                *total += part;
            }
        }
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            let run_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            metrics.publish(&folded.funnel, run_nanos, &stage_nanos);
        }
        folded
    }

    fn run_view<V: TrafficView>(&self, stats: &V, env: &StageEnv<'_>) -> PipelineResult {
        // check: allow(determinism, "wall-clock only feeds the metrics histograms; no pipeline decision or output reads it")
        let started = self.metrics.as_ref().map(|_| Instant::now());
        let part = self.run_view_sparse(stats, env, self.metrics.is_some());
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            let run_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            metrics.publish(&part.funnel, run_nanos, &part.stage_nanos);
        }
        PipelineResult {
            dark: Block24Set::from_iter(part.dark),
            unclean: Block24Set::from_iter(part.unclean),
            gray: Block24Set::from_iter(part.gray),
            funnel: part.funnel,
        }
    }

    /// The traversal core: classified blocks are collected as sparse
    /// lists so per-shard workers avoid allocating (and the fold avoids
    /// scanning) dense bitsets per shard. With `timed` set (a registry
    /// is attached), per-stage wall-clock nanoseconds accumulate into
    /// `stage_nanos`; otherwise no timestamps are taken.
    fn run_view_sparse<V: TrafficView>(
        &self,
        stats: &V,
        env: &StageEnv<'_>,
        timed: bool,
    ) -> ShardRun {
        let mut funnel = Funnel::with_stages(self.stage_names());
        let mut dark = Vec::new();
        let mut unclean = Vec::new();
        let mut gray = Vec::new();
        let mut stage_nanos = vec![0u64; if timed { self.stages.len() } else { 0 }];
        let src_lookup = |block: Block24| stats.src(block);

        'blocks: for (block, d) in stats.iter_dst() {
            funnel.note_seen();
            let ctx = BlockCtx::new(block, d, &src_lookup);
            for (i, stage) in self.stages.iter().enumerate() {
                let decision = if timed {
                    // check: allow(determinism, "wall-clock only feeds the metrics histograms; no pipeline decision or output reads it")
                    let t0 = Instant::now();
                    let v = stage.apply(&ctx, env);
                    stage_nanos[i] += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    v
                } else {
                    stage.apply(&ctx, env)
                };
                match decision {
                    Verdict::Keep => funnel.note_kept(i),
                    Verdict::Drop => {
                        funnel.note_dropped(i);
                        continue 'blocks;
                    }
                }
            }
            // Step 7: classification of the surviving candidate.
            if !ctx.originating(env).is_empty() {
                gray.push(block);
            } else if !d.received_big_tcp.is_empty() {
                unclean.push(block);
            } else {
                dark.push(block);
            }
        }

        ShardRun {
            dark,
            unclean,
            gray,
            funnel,
            stage_nanos,
        }
    }
}

/// One shard's (or one serial traversal's) raw classification output.
struct ShardRun {
    dark: Vec<Block24>,
    unclean: Vec<Block24>,
    gray: Vec<Block24>,
    funnel: Funnel,
    /// Per-stage elapsed nanoseconds; empty when the run is untimed.
    stage_nanos: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::FlowRecord;
    use mt_types::{Prefix, SimTime};

    fn flow(src: &str, dst: &str, proto: u8, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 40_000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: 2,
            packets,
            octets: packets * size,
        }
    }

    fn rib_with(prefixes: &[&str]) -> PrefixTrie<Asn> {
        prefixes
            .iter()
            .map(|p| (p.parse::<Prefix>().unwrap(), Asn(65_000)))
            .collect()
    }

    fn mixed_records() -> Vec<FlowRecord> {
        let mut records = Vec::new();
        for i in 0..60u32 {
            records.push(flow(
                "9.9.9.9",
                &format!("20.{}.{}.1", i % 6, i),
                if i % 5 == 0 { 17 } else { 6 },
                1 + u64::from(i % 9) * 400,
                if i % 3 == 0 { 1500 } else { 40 },
            ));
        }
        // Some blocks talk back (gray candidates).
        records.push(flow("20.0.0.50", "9.9.9.9", 6, 2, 40));
        records.push(flow("20.1.7.1", "9.9.9.9", 6, 2, 40));
        records
    }

    #[test]
    fn engine_matches_legacy_run_exactly() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let stats = mt_flow::TrafficStats::from_records(&mixed_records());
        let config = PipelineConfig::default();
        let legacy = crate::pipeline::run(&stats, &rib, 2, 3, &config);
        let engine = PipelineEngine::standard().run(&stats, &rib, 2, 3, &config);
        assert_eq!(engine.dark, legacy.dark);
        assert_eq!(engine.unclean, legacy.unclean);
        assert_eq!(engine.gray, legacy.gray);
        assert_eq!(engine.funnel, legacy.funnel);
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let records = mixed_records();
        let flat = mt_flow::TrafficStats::from_records(&records);
        let config = PipelineConfig::default();
        let engine = PipelineEngine::standard();
        let serial = engine.run(&flat, &rib, 1, 1, &config);
        for shards in [1, 4, 16] {
            let sharded = ShardedTrafficStats::from_records(shards, &records);
            for threads in [1, 2, 4] {
                let par = engine.run_sharded(&sharded, &rib, 1, 1, &config, threads);
                assert_eq!(par.dark, serial.dark, "shards={shards} threads={threads}");
                assert_eq!(par.unclean, serial.unclean);
                assert_eq!(par.gray, serial.gray);
                assert_eq!(par.funnel, serial.funnel);
            }
        }
    }

    #[test]
    fn registry_mirrors_funnel_across_serial_and_sharded_runs() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let records = mixed_records();
        let flat = mt_flow::TrafficStats::from_records(&records);
        let sharded = ShardedTrafficStats::from_records(8, &records);
        let config = PipelineConfig::default();

        let registry = MetricsRegistry::new();
        let engine = PipelineEngine::standard().with_registry(&registry);
        let serial = engine.run(&flat, &rib, 1, 1, &config);
        let par = engine.run_sharded(&sharded, &rib, 1, 1, &config, 4);

        let snap = registry.snapshot();
        assert_eq!(snap.scalar("mt_pipeline_runs_total", &[]), Some(2));
        assert_eq!(
            snap.scalar("mt_pipeline_blocks_seen_total", &[]),
            Some(serial.funnel.seen() + par.funnel.seen())
        );
        for (s, p) in serial.funnel.stages().iter().zip(par.funnel.stages()) {
            let labels = [("stage", s.name.as_str())];
            assert_eq!(
                snap.scalar("mt_pipeline_stage_entered_total", &labels),
                Some(s.entered + p.entered),
                "entered for stage {}",
                s.name
            );
            assert_eq!(
                snap.scalar("mt_pipeline_stage_kept_total", &labels),
                Some(s.kept + p.kept),
                "kept for stage {}",
                s.name
            );
        }
        // Two runs → two observations in the run-time histogram, and
        // per-stage timings were recorded for each run.
        let text = snap.render_prometheus_text();
        assert!(
            text.contains("mt_pipeline_run_nanoseconds_count 2\n"),
            "{text}"
        );
        assert!(text.contains("mt_pipeline_stage_nanoseconds_count{stage=\"tcp\"} 2\n"));

        // An instrumented engine still returns bit-identical results.
        let bare = PipelineEngine::standard().run(&flat, &rib, 1, 1, &config);
        assert_eq!(serial.dark, bare.dark);
        assert_eq!(serial.funnel, bare.funnel);
        assert_eq!(par.dark, bare.dark);
        assert_eq!(par.funnel, bare.funnel);
    }

    #[test]
    fn custom_stage_vector_accounts_its_own_funnel() {
        // An engine with only the TCP and routed stages: no size or
        // volume filtering, so heavy TCP blocks survive.
        let engine = PipelineEngine::with_stages(vec![Box::new(TcpStage), Box::new(RoutedStage)]);
        let rib = rib_with(&["20.0.0.0/8"]);
        let stats = mt_flow::TrafficStats::from_records(&[
            flow("9.9.9.9", "20.1.1.1", 6, 5_000, 1400),
            flow("9.9.9.9", "21.1.1.1", 17, 10, 40),
        ]);
        let r = engine.run(&stats, &rib, 1, 1, &PipelineConfig::default());
        assert_eq!(r.funnel.stages().len(), 2);
        assert_eq!(r.funnel.seen(), 2);
        assert_eq!(r.funnel.kept_after("tcp"), Some(1));
        assert_eq!(r.funnel.kept_after("routed"), Some(1));
        assert_eq!(r.funnel.kept_after("volume"), None);
        assert_eq!(r.unclean.len(), 1, "no avg-size stage to reject it");
    }

    #[test]
    fn stage_context_memoizes_src_lookup() {
        let stats = mt_flow::TrafficStats::from_records(&[
            flow("20.1.1.9", "9.9.9.9", 6, 3, 40),
            flow("9.9.9.9", "20.1.1.1", 6, 3, 40),
        ]);
        let block: Block24 = mt_types::Block24::containing("20.1.1.1".parse().unwrap());
        let d = mt_flow::TrafficView::dst(&stats, block).unwrap();
        let calls = std::cell::Cell::new(0u32);
        let lookup = |b: Block24| {
            calls.set(calls.get() + 1);
            mt_flow::TrafficView::src(&stats, b)
        };
        let config = PipelineConfig::default();
        let rib = rib_with(&["20.0.0.0/8"]);
        let special = SpecialRegistry::new();
        let env = StageEnv {
            rib: &rib,
            rib_index: RibIndex::build(&rib),
            special: &special,
            config: &config,
            volume_cap: 1e9,
        };
        let ctx = BlockCtx::new(block, d, &lookup);
        assert_eq!(calls.get(), 0, "lookup is lazy");
        let _ = ctx.originating(&env);
        let _ = ctx.clean_hosts(&env);
        let _ = ctx.src();
        assert_eq!(calls.get(), 1, "lookup runs at most once per block");
    }
}
