//! Baselines the paper improves on.
//!
//! Two comparators:
//!
//! - [`origin_only`] — "a /24 is dark if it receives traffic but never
//!   sends any", the obvious first cut (and what the ISP labeling of
//!   Section 4.1 starts from). It lacks the packet-size fingerprint and
//!   the volume cap, so it swallows every active block whose outbound
//!   path misses the vantage point.
//! - [`one_way_blocks`] — the Glatz & Dimitropoulos approach the paper's
//!   Section 2 discusses: classify each *flow* as one-way (no reverse
//!   flow observed) or two-way, then call a block dark when all its
//!   inbound traffic is one-way. Needs flow-level input (not per-/24
//!   aggregates) and was designed for unsampled border NetFlow; under
//!   IXP-style sampling the reverse flow is often simply unsampled, so
//!   its false positives grow with the sampling rate.

use crate::pipeline::PipelineConfig;
use mt_flow::{FlowRecord, TrafficView};
use mt_types::{Asn, Block24, Block24Set, PrefixTrie, RibIndex, SpecialRegistry};
use std::collections::HashSet;

/// Runs the origin-only baseline: routed, non-special blocks that
/// received any traffic and originated none.
pub fn origin_only<V: TrafficView>(stats: &V, rib: &PrefixTrie<Asn>) -> Block24Set {
    let special = SpecialRegistry::new();
    let rib_index = RibIndex::build(rib);
    let mut dark = Block24Set::new();
    for (block, d) in stats.iter_dst() {
        if d.total_packets() == 0 {
            continue;
        }
        if stats.src(block).map(|s| s.packets).unwrap_or(0) > 0 {
            continue;
        }
        if special.is_special_block(block) || !rib_index.contains_addr(block.base()) {
            continue;
        }
        dark.insert(block);
    }
    dark
}

/// The Glatz-style one-way-traffic baseline, at flow granularity.
///
/// A flow is *two-way* when a flow with the swapped 5-tuple appears in
/// the same record set. A routed, non-special /24 is called dark when it
/// received at least one flow and every flow toward it is one-way.
pub fn one_way_blocks(records: &[FlowRecord], rib: &PrefixTrie<Asn>) -> Block24Set {
    // Directed endpoint keys; a conversation is two-way if both
    // directions appear.
    let forward: HashSet<(u32, u32, u16, u16, u8)> = records
        .iter()
        .map(|r| (r.src.0, r.dst.0, r.src_port, r.dst_port, r.protocol))
        .collect();
    let special = SpecialRegistry::new();
    let rib_index = RibIndex::build(rib);
    let mut received = Block24Set::new();
    let mut answered = Block24Set::new();
    for r in records {
        let block = Block24::containing(r.dst);
        received.insert(block);
        let reverse = (r.dst.0, r.src.0, r.dst_port, r.src_port, r.protocol);
        if forward.contains(&reverse) {
            // The destination talks back: the block is alive.
            answered.insert(block);
        }
        // A block originating traffic is equally alive.
        answered.insert(Block24::containing(r.src));
    }
    let mut dark = received.difference(&answered);
    // Routability and special-purpose checks as in the other methods.
    let doomed: Vec<Block24> = dark
        .iter()
        .filter(|b| special.is_special_block(*b) || !rib_index.contains_addr(b.base()))
        .collect();
    for b in doomed {
        dark.remove(b);
    }
    dark
}

/// Side-by-side result of the baseline and the full pipeline.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Blocks the baseline calls dark.
    pub baseline: Block24Set,
    /// Blocks the full pipeline calls dark.
    pub pipeline: Block24Set,
}

impl BaselineComparison {
    /// Runs both approaches on the same inputs (flat or sharded).
    pub fn run<V: TrafficView>(
        stats: &V,
        rib: &PrefixTrie<Asn>,
        sampling_rate: u32,
        days: u32,
        config: &PipelineConfig,
    ) -> Self {
        BaselineComparison {
            baseline: origin_only(stats, rib),
            pipeline: crate::pipeline::run(stats, rib, sampling_rate, days, config).dark,
        }
    }

    /// Blocks only the baseline accepts (the pipeline's filters reject
    /// them — where the false positives hide).
    pub fn baseline_only(&self) -> Block24Set {
        self.baseline.difference(&self.pipeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::{FlowRecord, TrafficStats};
    use mt_types::{Prefix, SimTime};

    fn flow(src: &str, dst: &str, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 4000,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * size,
        }
    }

    fn rib() -> PrefixTrie<Asn> {
        [("20.0.0.0/8", 65_000u32), ("9.0.0.0/8", 65_001)]
            .into_iter()
            .map(|(p, a)| (p.parse::<Prefix>().unwrap(), Asn(a)))
            .collect()
    }

    #[test]
    fn baseline_accepts_big_packet_blocks() {
        // An active block whose outbound path is invisible: inbound
        // 1400-byte data, no observed origination.
        let records = [flow("9.9.9.9", "20.1.1.1", 100, 1_400)];
        let stats = TrafficStats::from_records(&records);
        let cmp = BaselineComparison::run(&stats, &rib(), 1, 1, &PipelineConfig::default());
        assert_eq!(cmp.baseline.len(), 1, "baseline is fooled");
        assert_eq!(cmp.pipeline.len(), 0, "size filter rejects it");
        assert_eq!(cmp.baseline_only().len(), 1);
    }

    #[test]
    fn both_accept_genuinely_dark_blocks() {
        let records = [flow("9.9.9.9", "20.1.1.1", 100, 40)];
        let stats = TrafficStats::from_records(&records);
        let cmp = BaselineComparison::run(&stats, &rib(), 1, 1, &PipelineConfig::default());
        assert_eq!(cmp.baseline.len(), 1);
        assert_eq!(cmp.pipeline.len(), 1);
        assert!(cmp.baseline_only().is_empty());
    }

    #[test]
    fn one_way_flags_unanswered_blocks_only() {
        let records = [
            // Scan to 20.1.1.1: never answered → one-way → dark.
            flow("9.9.9.9", "20.1.1.1", 10, 40),
            // Conversation with 20.1.2.1: both directions → alive.
            flow("9.9.9.9", "20.1.2.1", 5, 40),
            flow("20.1.2.1", "9.9.9.9", 5, 1400),
            // Unrouted destination: excluded despite being one-way.
            flow("9.9.9.9", "21.1.1.1", 3, 40),
        ];
        let dark = one_way_blocks(&records, &rib());
        assert_eq!(dark.len(), 1);
        assert!(dark.contains(mt_types::Block24::containing("20.1.1.1".parse().unwrap())));
    }

    #[test]
    fn one_way_reverse_match_requires_swapped_ports() {
        // Same hosts, but the "reply" uses unrelated ports: still one-way.
        let a = flow("9.9.9.9", "20.1.1.1", 3, 40);
        let mut b = flow("20.1.1.1", "9.9.9.9", 3, 40);
        b.src_port = 1;
        b.dst_port = 2;
        let dark = one_way_blocks(&[a, b], &rib());
        // 20.1.1.0/24 originates (flow b) so it is alive regardless;
        // 9.9.9.0/24 receives only the unmatched b and originates a.
        assert!(dark.is_empty());
    }

    #[test]
    fn one_way_is_fooled_where_the_pipeline_is_not() {
        // An active block whose inbound data is visible but whose
        // outbound path misses the vantage point: one-way calls it dark,
        // the size filter does not.
        let records = [flow("8.8.8.8", "20.1.1.1", 500, 1400)];
        let dark = one_way_blocks(&records, &rib());
        assert_eq!(dark.len(), 1, "one-way is fooled");
        let stats = TrafficStats::from_records(&records);
        let full = crate::pipeline::run(&stats, &rib(), 1, 1, &PipelineConfig::default());
        assert!(full.dark.is_empty(), "the fingerprint rejects it");
    }

    #[test]
    fn baseline_still_filters_origination_and_routing() {
        let records = [
            flow("9.9.9.9", "20.1.1.1", 10, 40),
            flow("20.1.1.5", "9.9.9.9", 1, 40),  // originates
            flow("9.9.9.9", "21.1.1.1", 10, 40), // unrouted
            flow("9.9.9.9", "10.0.0.1", 10, 40), // private
        ];
        let stats = TrafficStats::from_records(&records);
        let base = origin_only(&stats, &rib());
        // Only the scanner's own 9.9.9.0/24 received-without-sending?
        // No: 9.9.9.9 originates too. Nothing survives except... the
        // originating 20.1.1.0/24 is excluded, the rest are unroutable
        // or special.
        assert!(base.is_empty());
    }
}
