//! The inference pipeline façade (Section 4.2, Figure 2).
//!
//! Since the staged-engine refactor, the seven-step loop lives in
//! [`crate::engine`]: each filter of the funnel is a
//! [`Stage`](crate::engine::Stage) and the traversal/accounting
//! machinery is the [`PipelineEngine`](crate::engine::PipelineEngine).
//! This module keeps the stable surface around it:
//!
//! - [`PipelineConfig`] — the tunable thresholds;
//! - [`Funnel`] — ordered per-stage candidate accounting. Once a flat
//!   struct with one hard-coded field per step, it is now a vector of
//!   [`StageCount`]s (entered/kept per stage, so drop reasons fall out
//!   directly) while the legacy accessors ([`Funnel::seen`],
//!   [`Funnel::after_tcp`], …, [`Funnel::after_volume`]) and the legacy
//!   flat JSON encoding are preserved for existing reports;
//! - [`PipelineResult`] — the inferred **dark** (meta-telescope
//!   prefix), **unclean**, and **gray** /24 sets plus the funnel;
//! - [`run`] — a thin compatibility wrapper that executes the standard
//!   six-stage engine serially over any [`TrafficView`]. Its outputs
//!   are bit-identical to the pre-refactor loop, and to
//!   [`PipelineEngine::run_sharded`](crate::engine::PipelineEngine::run_sharded)
//!   over the same traffic.
//!
//! The pipeline consumes only *observable* inputs: per-/24 aggregates of
//! sampled flows, a RIB, and the special-purpose registry. Ground truth
//! never enters here. Step semantics (see DESIGN.md for the mapping to
//! the paper's funnel):
//!
//! 1. **TCP** (`tcp`) — a block with no sampled TCP cannot be
//!    fingerprinted; dropped.
//! 2. **Average packet size** (`avg_size`) — blocks whose block-level
//!    average TCP size exceeds the threshold are dropped (the
//!    Section 4.1 fingerprint).
//! 3. **Source address unseen** (`clean_origin`) — hosts seen
//!    originating traffic are disqualified; a block whose origination
//!    exceeds the spoofing tolerance *and* retains no clean receiving
//!    host is dropped. Blocks with both originators and clean receivers
//!    stay and are later classified gray.
//! 4. **Private / multicast / reserved** (`special`) — RFC 6890 space
//!    is dropped.
//! 5. **Globally routed** (`routed`) — blocks outside the day's RIB are
//!    dropped.
//! 6. **Volume** (`volume`) — blocks whose estimated true packet rate
//!    exceeds the per-day cap are dropped (asymmetric-routing decoys:
//!    CDN ACK streams look like IBR but are orders of magnitude
//!    heavier).
//! 7. **Classification** — surviving blocks become **dark** (every
//!    TCP-receiving host is clean and nothing originated), **unclean**
//!    (no originators, but some host received large TCP), or **gray**
//!    (some host originated while another stayed clean).

use mt_flow::TrafficView;
use mt_types::{Asn, Block24Set, PrefixTrie};
use serde::{Deserialize, Error, Map, Serialize, Value};

/// Tunable pipeline parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Maximum average TCP packet size (bytes) for a block to remain a
    /// candidate (the paper picks 44 after the Table 3 sweep).
    pub avg_size_threshold: f64,
    /// Maximum estimated *true* packets per /24 per day (the paper's
    /// 1.7 M, scaled 1:1000 in this workspace).
    pub volume_threshold_per_day: f64,
    /// Sampled source packets a block may emit before it counts as
    /// originating (0 = strict; Section 7.2's spoofing tolerance raises
    /// it).
    pub spoof_tolerance_packets: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            avg_size_threshold: 44.0,
            volume_threshold_per_day: 1_700.0,
            spoof_tolerance_packets: 0,
        }
    }
}

/// The standard six filter stages of the paper's funnel, in order.
pub const STANDARD_STAGES: [&str; 6] = [
    "tcp",
    "avg_size",
    "clean_origin",
    "special",
    "routed",
    "volume",
];

/// Candidate accounting for one stage of the funnel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCount {
    /// The stage's name ([`crate::engine::Stage::name`]).
    pub name: String,
    /// Blocks that reached this stage.
    pub entered: u64,
    /// Blocks that survived it; `entered - kept` is the stage's drop
    /// count.
    pub kept: u64,
}

/// Ordered per-stage candidate accounting (the funnel of Figure 2).
///
/// Serialization note: a funnel over the [`STANDARD_STAGES`] encodes as
/// the legacy flat object (`{"seen": …, "after_tcp": …, …,
/// "after_volume": …}`); because a block dropped at stage *i* never
/// enters stage *i + 1*, each stage's `entered` equals the previous
/// stage's `kept` and the flat form is lossless. Custom stage vectors
/// encode as `{"seen": …, "stages": [{"name", "entered", "kept"}, …]}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Funnel {
    seen: u64,
    stages: Vec<StageCount>,
}

impl Default for Funnel {
    /// A zeroed funnel over the [`STANDARD_STAGES`].
    fn default() -> Self {
        Funnel::with_stages(STANDARD_STAGES)
    }
}

impl Funnel {
    /// A zeroed funnel over the given ordered stage names.
    pub fn with_stages<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Funnel {
            seen: 0,
            stages: names
                .into_iter()
                .map(|name| StageCount {
                    name: name.into(),
                    entered: 0,
                    kept: 0,
                })
                .collect(),
        }
    }

    /// /24s with any sampled traffic toward them.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The per-stage counters, in funnel order.
    pub fn stages(&self) -> &[StageCount] {
        &self.stages
    }

    /// Blocks surviving the named stage, if the funnel has it.
    pub fn kept_after(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|s| s.name == name).map(|s| s.kept)
    }

    fn kept_or_zero(&self, name: &str) -> u64 {
        self.kept_after(name).unwrap_or(0)
    }

    /// Remaining after step 1 (received TCP). Legacy accessor for the
    /// `tcp` stage.
    pub fn after_tcp(&self) -> u64 {
        self.kept_or_zero("tcp")
    }

    /// Remaining after step 2 (average size). Legacy accessor for the
    /// `avg_size` stage.
    pub fn after_avg(&self) -> u64 {
        self.kept_or_zero("avg_size")
    }

    /// Remaining after step 3 (a clean receiving host exists). Legacy
    /// accessor for the `clean_origin` stage.
    pub fn after_origin(&self) -> u64 {
        self.kept_or_zero("clean_origin")
    }

    /// Remaining after step 4 (not special-purpose). Legacy accessor
    /// for the `special` stage.
    pub fn after_special(&self) -> u64 {
        self.kept_or_zero("special")
    }

    /// Remaining after step 5 (globally routed). Legacy accessor for
    /// the `routed` stage.
    pub fn after_routed(&self) -> u64 {
        self.kept_or_zero("routed")
    }

    /// Remaining after step 6 (volume cap). Legacy accessor for the
    /// `volume` stage.
    pub fn after_volume(&self) -> u64 {
        self.kept_or_zero("volume")
    }

    pub(crate) fn note_seen(&mut self) {
        self.seen += 1;
    }

    pub(crate) fn note_kept(&mut self, stage: usize) {
        self.stages[stage].entered += 1;
        self.stages[stage].kept += 1;
    }

    pub(crate) fn note_dropped(&mut self, stage: usize) {
        self.stages[stage].entered += 1;
    }

    /// Adds another funnel's counts into this one. The two must share
    /// the same ordered stage names — per-shard funnels over the same
    /// engine always do.
    ///
    /// # Panics
    ///
    /// Panics when the stage vectors differ.
    pub fn absorb(&mut self, other: &Funnel) {
        assert_eq!(
            self.stages.len(),
            other.stages.len(),
            "absorbing funnels with different stage vectors"
        );
        self.seen += other.seen;
        for (mine, theirs) in self.stages.iter_mut().zip(&other.stages) {
            assert_eq!(
                mine.name, theirs.name,
                "absorbing funnels with different stage vectors"
            );
            mine.entered += theirs.entered;
            mine.kept += theirs.kept;
        }
    }

    fn is_standard(&self) -> bool {
        self.stages.len() == STANDARD_STAGES.len()
            && self
                .stages
                .iter()
                .zip(STANDARD_STAGES)
                .all(|(s, name)| s.name == name)
    }
}

impl Serialize for Funnel {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("seen".to_string(), Value::U64(self.seen));
        if self.is_standard() {
            for (stage, legacy) in self.stages.iter().zip(LEGACY_KEYS) {
                map.insert(legacy.to_string(), Value::U64(stage.kept));
            }
        } else {
            let stages = self
                .stages
                .iter()
                .map(|s| {
                    let mut entry = Map::new();
                    entry.insert("name".to_string(), Value::String(s.name.clone()));
                    entry.insert("entered".to_string(), Value::U64(s.entered));
                    entry.insert("kept".to_string(), Value::U64(s.kept));
                    Value::Object(entry)
                })
                .collect();
            map.insert("stages".to_string(), Value::Array(stages));
        }
        Value::Object(map)
    }
}

/// Legacy flat field names, index-aligned with [`STANDARD_STAGES`].
const LEGACY_KEYS: [&str; 6] = [
    "after_tcp",
    "after_avg",
    "after_origin",
    "after_special",
    "after_routed",
    "after_volume",
];

impl Deserialize for Funnel {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = match value {
            Value::Object(map) => map,
            _ => return Err(Error("Funnel: expected object".to_string())),
        };
        let field_u64 = |map: &Map, key: &str| -> Result<u64, Error> {
            map.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| Error(format!("Funnel.{key}: expected unsigned integer")))
        };
        let seen = field_u64(obj, "seen")?;
        if let Some(stages_value) = obj.get("stages") {
            let entries = match stages_value {
                Value::Array(entries) => entries,
                _ => return Err(Error("Funnel.stages: expected array".to_string())),
            };
            let mut stages = Vec::with_capacity(entries.len());
            for entry in entries {
                let entry = match entry {
                    Value::Object(map) => map,
                    _ => return Err(Error("Funnel.stages[]: expected object".to_string())),
                };
                stages.push(StageCount {
                    name: entry
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| Error("Funnel.stages[].name: expected string".to_string()))?
                        .to_string(),
                    entered: field_u64(entry, "entered")?,
                    kept: field_u64(entry, "kept")?,
                });
            }
            return Ok(Funnel { seen, stages });
        }
        // Legacy flat form: reconstruct `entered` from the previous
        // stage's `kept` (stage i only sees survivors of stage i - 1).
        let mut entered = seen;
        let mut stages = Vec::with_capacity(STANDARD_STAGES.len());
        for (name, legacy) in STANDARD_STAGES.iter().zip(LEGACY_KEYS) {
            let kept = field_u64(obj, legacy)?;
            stages.push(StageCount {
                name: (*name).to_string(),
                entered,
                kept,
            });
            entered = kept;
        }
        Ok(Funnel { seen, stages })
    }
}

/// The pipeline's output.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Inferred meta-telescope prefixes.
    pub dark: Block24Set,
    /// Candidates with a clean host but also hosts that failed the
    /// per-IP size check.
    pub unclean: Block24Set,
    /// Candidates where some host originated traffic.
    pub gray: Block24Set,
    /// Per-stage accounting.
    pub funnel: Funnel,
}

impl PipelineResult {
    /// Total classified candidates (dark + unclean + gray).
    pub fn classified(&self) -> usize {
        self.dark.len() + self.unclean.len() + self.gray.len()
    }
}

/// Runs the standard six-stage pipeline over aggregated stats.
///
/// Compatibility wrapper over
/// [`PipelineEngine::standard`](crate::engine::PipelineEngine::standard):
/// same outputs as the original hard-coded loop, now accepting any
/// [`TrafficView`] (flat [`mt_flow::TrafficStats`] or
/// [`mt_flow::ShardedTrafficStats`]).
///
/// * `stats` — merged sampled traffic of the observation window (one or
///   more vantage points, one or more days);
/// * `rib` — the routed-prefix table for the window;
/// * `sampling_rate` — the vantage points' packet sampling rate, used to
///   scale sampled counts back to volume estimates;
/// * `days` — window length in days (volume normalisation);
/// * `config` — thresholds.
pub fn run<V: TrafficView>(
    stats: &V,
    rib: &PrefixTrie<Asn>,
    sampling_rate: u32,
    days: u32,
    config: &PipelineConfig,
) -> PipelineResult {
    crate::engine::PipelineEngine::standard().run(stats, rib, sampling_rate, days, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::{FlowRecord, TrafficStats};
    use mt_types::{Block24, Ipv4, Prefix, SimTime};

    /// Builds a record; `size` is per-packet bytes.
    fn flow(src: &str, dst: &str, proto: u8, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 40_000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: 2,
            packets,
            octets: packets * size,
        }
    }

    fn rib_with(prefixes: &[&str]) -> PrefixTrie<Asn> {
        prefixes
            .iter()
            .map(|p| (p.parse::<Prefix>().unwrap(), Asn(65_000)))
            .collect()
    }

    fn run_default(records: &[FlowRecord], rib: &PrefixTrie<Asn>) -> PipelineResult {
        let stats = TrafficStats::from_records(records);
        run(&stats, rib, 1, 1, &PipelineConfig::default())
    }

    #[test]
    fn clean_block_is_dark() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.1", 6, 10, 40),
                flow("9.9.9.9", "20.1.1.77", 6, 5, 44),
            ],
            &rib,
        );
        assert_eq!(r.dark.len(), 1);
        assert!(r.dark.contains(Block24::containing(Ipv4::new(20, 1, 1, 0))));
        assert_eq!(r.funnel.seen(), 1);
        assert_eq!(r.funnel.after_volume(), 1);
    }

    #[test]
    fn udp_only_block_fails_step1() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(&[flow("9.9.9.9", "20.1.1.1", 17, 10, 100)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.seen(), 1);
        assert_eq!(r.funnel.after_tcp(), 0);
    }

    #[test]
    fn large_average_fails_step2() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(&[flow("9.9.9.9", "20.1.1.1", 6, 10, 1500)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_tcp(), 1);
        assert_eq!(r.funnel.after_avg(), 0);
    }

    #[test]
    fn boundary_average_survives_step2() {
        let rib = rib_with(&["20.0.0.0/8"]);
        // Exactly 44 bytes average: kept (threshold is ≤).
        let r = run_default(&[flow("9.9.9.9", "20.1.1.1", 6, 10, 44)], &rib);
        assert_eq!(r.dark.len(), 1);
    }

    #[test]
    fn originating_block_with_clean_host_is_gray() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.1", 6, 10, 40), // scan to host 1
                flow("20.1.1.50", "9.9.9.9", 6, 3, 40), // host 50 talks back
            ],
            &rib,
        );
        assert_eq!(r.gray.len(), 1);
        assert_eq!(r.dark.len(), 0);
    }

    #[test]
    fn fully_originating_block_fails_step3() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        // The only scanned host is also the one originating.
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.50", 6, 10, 40),
                flow("20.1.1.50", "9.9.9.9", 6, 3, 40),
            ],
            &rib,
        );
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_avg(), 2, "both blocks had small TCP");
        // The scanner's own block (receiving the reply) is fully
        // originating too, so nothing survives step 3.
        assert_eq!(r.funnel.after_origin(), 0);
    }

    #[test]
    fn spoof_tolerance_forgives_light_origination() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let records = [
            flow("9.9.9.9", "20.1.1.1", 6, 10, 40),
            flow("20.1.1.50", "9.9.9.9", 6, 2, 40), // 2 spoofed packets
        ];
        let stats = TrafficStats::from_records(&records);
        let strict = run(&stats, &rib, 1, 1, &PipelineConfig::default());
        assert!(strict.dark.is_empty());
        assert_eq!(strict.gray.len(), 1);
        let tolerant = run(
            &stats,
            &rib,
            1,
            1,
            &PipelineConfig {
                spoof_tolerance_packets: 2,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(tolerant.dark.len(), 1);
    }

    #[test]
    fn special_space_fails_step4() {
        let rib = rib_with(&["0.0.0.0/0"]);
        let r = run_default(&[flow("9.9.9.9", "10.1.1.1", 6, 10, 40)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_origin(), 1);
        assert_eq!(r.funnel.after_special(), 0);
    }

    #[test]
    fn unrouted_space_fails_step5() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(&[flow("9.9.9.9", "21.1.1.1", 6, 10, 40)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_special(), 1);
        assert_eq!(r.funnel.after_routed(), 0);
    }

    #[test]
    fn heavy_block_fails_step6() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let records = [flow("9.9.9.9", "20.1.1.1", 6, 2_000, 40)];
        let r = run_default(&records, &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_routed(), 1);
        assert_eq!(r.funnel.after_volume(), 0);
    }

    #[test]
    fn volume_cap_scales_with_sampling_and_days() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let records = [flow("9.9.9.9", "20.1.1.1", 6, 2_000, 40)];
        let stats = TrafficStats::from_records(&records);
        // 2 000 sampled at rate 10 over 7 days → ≈ 2 857 true/day > 1 700.
        let week = run(&stats, &rib, 10, 7, &PipelineConfig::default());
        assert_eq!(week.classified(), 0);
        // Over 14 days the same count is within the cap.
        let fortnight = run(&stats, &rib, 10, 14, &PipelineConfig::default());
        assert_eq!(fortnight.dark.len(), 1);
    }

    #[test]
    fn mixed_sizes_become_unclean() {
        let rib = rib_with(&["20.0.0.0/8"]);
        // Host 1 gets clean SYNs; host 2 got one large TCP packet, but
        // the block average stays under 44.
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.1", 6, 100, 40),
                flow("9.9.9.9", "20.1.1.2", 6, 1, 200),
            ],
            &rib,
        );
        assert_eq!(r.unclean.len(), 1);
        assert_eq!(r.dark.len(), 0);
    }

    #[test]
    fn funnel_is_monotone() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let mut records = Vec::new();
        for i in 0..50u32 {
            records.push(flow(
                "9.9.9.9",
                &format!("20.1.{i}.1"),
                if i % 5 == 0 { 17 } else { 6 },
                10 + u64::from(i) * 60,
                if i % 3 == 0 { 1500 } else { 40 },
            ));
        }
        let r = run_default(&records, &rib);
        let f = &r.funnel;
        assert!(f.seen() >= f.after_tcp());
        assert!(f.after_tcp() >= f.after_avg());
        assert!(f.after_avg() >= f.after_origin());
        assert!(f.after_origin() >= f.after_special());
        assert!(f.after_special() >= f.after_routed());
        assert!(f.after_routed() >= f.after_volume());
        assert_eq!(r.classified() as u64, f.after_volume());
        // Each stage only sees the previous stage's survivors.
        let mut expect_entered = f.seen();
        for stage in f.stages() {
            assert_eq!(stage.entered, expect_entered, "stage {}", stage.name);
            assert!(stage.kept <= stage.entered);
            expect_entered = stage.kept;
        }
    }

    #[test]
    fn funnel_serde_uses_legacy_flat_keys() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.1", 6, 10, 40),
                flow("9.9.9.9", "20.2.2.2", 17, 10, 40),
                flow("20.3.3.3", "9.9.9.9", 6, 3, 40),
            ],
            &rib,
        );
        let json = serde_json::to_string(&r.funnel).unwrap();
        for key in ["seen", "after_tcp", "after_avg", "after_origin"] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}: {json}"
            );
        }
        assert!(
            !json.contains("stages"),
            "standard funnel stays flat: {json}"
        );
        let back: Funnel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r.funnel);
    }

    #[test]
    fn custom_funnel_serde_roundtrips() {
        let mut funnel = Funnel::with_stages(["tcp", "volume"]);
        funnel.note_seen();
        funnel.note_seen();
        funnel.note_kept(0);
        funnel.note_dropped(0);
        funnel.note_dropped(1);
        let json = serde_json::to_string(&funnel).unwrap();
        assert!(
            json.contains("stages"),
            "custom funnel uses stage array: {json}"
        );
        let back: Funnel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, funnel);
    }

    #[test]
    fn absorb_folds_counts() {
        let mut a = Funnel::default();
        a.note_seen();
        a.note_kept(0);
        let mut b = Funnel::default();
        b.note_seen();
        b.note_dropped(0);
        a.absorb(&b);
        assert_eq!(a.seen(), 2);
        assert_eq!(a.stages()[0].entered, 2);
        assert_eq!(a.after_tcp(), 1);
    }

    #[test]
    #[should_panic(expected = "different stage vectors")]
    fn absorb_rejects_mismatched_stage_vectors() {
        let mut a = Funnel::default();
        let b = Funnel::with_stages(["tcp"]);
        a.absorb(&b);
    }
}
