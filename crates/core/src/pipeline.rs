//! The seven-step inference pipeline (Section 4.2, Figure 2).
//!
//! The pipeline consumes only *observable* inputs: per-/24 aggregates of
//! sampled flows, a RIB, and the special-purpose registry. Ground truth
//! never enters here.
//!
//! Step semantics (see DESIGN.md for the mapping to the paper's funnel):
//!
//! 1. **TCP** — a block with no sampled TCP cannot be fingerprinted;
//!    dropped.
//! 2. **Average packet size** — blocks whose block-level average TCP
//!    size exceeds the threshold are dropped (the Section 4.1
//!    fingerprint).
//! 3. **Source address unseen** — hosts seen originating traffic are
//!    disqualified; a block whose origination exceeds the spoofing
//!    tolerance *and* retains no clean receiving host is dropped.
//!    Blocks with both originators and clean receivers stay and are
//!    later classified gray.
//! 4. **Private / multicast / reserved** — RFC 6890 space is dropped.
//! 5. **Globally routed** — blocks outside the day's RIB are dropped.
//! 6. **Volume** — blocks whose estimated true packet rate exceeds the
//!    per-day cap are dropped (asymmetric-routing decoys: CDN ACK
//!    streams look like IBR but are orders of magnitude heavier).
//! 7. **Classification** — remaining blocks become **dark** (every
//!    TCP-receiving host is clean and nothing originated), **unclean**
//!    (no originators, but some host received large TCP), or **gray**
//!    (some host originated while another stayed clean).

use mt_flow::{HostSet, TrafficStats};
use mt_types::{Asn, Block24Set, PrefixTrie, SpecialRegistry};
use serde::{Deserialize, Serialize};

/// Tunable pipeline parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Maximum average TCP packet size (bytes) for a block to remain a
    /// candidate (the paper picks 44 after the Table 3 sweep).
    pub avg_size_threshold: f64,
    /// Maximum estimated *true* packets per /24 per day (the paper's
    /// 1.7 M, scaled 1:1000 in this workspace).
    pub volume_threshold_per_day: f64,
    /// Sampled source packets a block may emit before it counts as
    /// originating (0 = strict; Section 7.2's spoofing tolerance raises
    /// it).
    pub spoof_tolerance_packets: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            avg_size_threshold: 44.0,
            volume_threshold_per_day: 1_700.0,
            spoof_tolerance_packets: 0,
        }
    }
}

/// Per-step candidate accounting (the funnel of Figure 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Funnel {
    /// /24s with any sampled traffic toward them.
    pub seen: u64,
    /// Remaining after step 1 (received TCP).
    pub after_tcp: u64,
    /// Remaining after step 2 (average size).
    pub after_avg: u64,
    /// Remaining after step 3 (a clean receiving host exists).
    pub after_origin: u64,
    /// Remaining after step 4 (not special-purpose).
    pub after_special: u64,
    /// Remaining after step 5 (globally routed).
    pub after_routed: u64,
    /// Remaining after step 6 (volume cap).
    pub after_volume: u64,
}

/// The pipeline's output.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Inferred meta-telescope prefixes.
    pub dark: Block24Set,
    /// Candidates with a clean host but also hosts that failed the
    /// per-IP size check.
    pub unclean: Block24Set,
    /// Candidates where some host originated traffic.
    pub gray: Block24Set,
    /// Per-step accounting.
    pub funnel: Funnel,
}

impl PipelineResult {
    /// Total classified candidates (dark + unclean + gray).
    pub fn classified(&self) -> usize {
        self.dark.len() + self.unclean.len() + self.gray.len()
    }
}

/// Runs the pipeline over aggregated stats.
///
/// * `stats` — merged sampled traffic of the observation window (one or
///   more vantage points, one or more days);
/// * `rib` — the routed-prefix table for the window;
/// * `sampling_rate` — the vantage points' packet sampling rate, used to
///   scale sampled counts back to volume estimates;
/// * `days` — window length in days (volume normalisation);
/// * `config` — thresholds.
pub fn run(
    stats: &TrafficStats,
    rib: &PrefixTrie<Asn>,
    sampling_rate: u32,
    days: u32,
    config: &PipelineConfig,
) -> PipelineResult {
    assert!(days > 0, "observation window must cover at least one day");
    let special = SpecialRegistry::new();
    let mut funnel = Funnel::default();
    let mut dark = Block24Set::new();
    let mut unclean = Block24Set::new();
    let mut gray = Block24Set::new();

    let volume_cap =
        config.volume_threshold_per_day * f64::from(days) / f64::from(sampling_rate);

    for (block, d) in stats.iter_dst() {
        funnel.seen += 1;
        // Step 1: TCP traffic present.
        if d.tcp_packets == 0 {
            continue;
        }
        funnel.after_tcp += 1;
        // Step 2: small average TCP size.
        let avg = d.avg_tcp_size().expect("tcp_packets > 0");
        if avg > config.avg_size_threshold {
            continue;
        }
        funnel.after_avg += 1;
        // Step 3: a clean receiving host must exist once originating
        // hosts (beyond the spoofing tolerance) are disqualified.
        let origin = stats.src(block);
        let origin_pkts = origin.map(|s| s.packets).unwrap_or(0);
        let originating: HostSet = if origin_pkts > config.spoof_tolerance_packets {
            origin.map(|s| s.originating).unwrap_or(HostSet::EMPTY)
        } else {
            HostSet::EMPTY
        };
        let clean = d
            .received_tcp
            .difference(&d.received_big_tcp)
            .difference(&originating);
        if clean.is_empty() {
            continue;
        }
        funnel.after_origin += 1;
        // Step 4: not special-purpose space.
        if special.is_special_block(block) {
            continue;
        }
        funnel.after_special += 1;
        // Step 5: globally routed.
        if !rib.contains_addr(block.base()) {
            continue;
        }
        funnel.after_routed += 1;
        // Step 6: volume cap on the estimated true packet rate.
        if d.total_packets() as f64 > volume_cap {
            continue;
        }
        funnel.after_volume += 1;
        // Step 7: classification.
        if !originating.is_empty() {
            gray.insert(block);
        } else if !d.received_big_tcp.is_empty() {
            unclean.insert(block);
        } else {
            dark.insert(block);
        }
    }

    PipelineResult {
        dark,
        unclean,
        gray,
        funnel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::FlowRecord;
    use mt_types::{Block24, Ipv4, Prefix, SimTime};

    /// Builds a record; `size` is per-packet bytes.
    fn flow(src: &str, dst: &str, proto: u8, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 40_000,
            dst_port: 23,
            protocol: proto,
            tcp_flags: 2,
            packets,
            octets: packets * size,
        }
    }

    fn rib_with(prefixes: &[&str]) -> PrefixTrie<Asn> {
        prefixes
            .iter()
            .map(|p| (p.parse::<Prefix>().unwrap(), Asn(65_000)))
            .collect()
    }

    fn run_default(records: &[FlowRecord], rib: &PrefixTrie<Asn>) -> PipelineResult {
        let stats = TrafficStats::from_records(records);
        run(&stats, rib, 1, 1, &PipelineConfig::default())
    }

    #[test]
    fn clean_block_is_dark() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.1", 6, 10, 40),
                flow("9.9.9.9", "20.1.1.77", 6, 5, 44),
            ],
            &rib,
        );
        assert_eq!(r.dark.len(), 1);
        assert!(r.dark.contains(Block24::containing(Ipv4::new(20, 1, 1, 0))));
        assert_eq!(r.funnel.seen, 1);
        assert_eq!(r.funnel.after_volume, 1);
    }

    #[test]
    fn udp_only_block_fails_step1() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(&[flow("9.9.9.9", "20.1.1.1", 17, 10, 100)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.seen, 1);
        assert_eq!(r.funnel.after_tcp, 0);
    }

    #[test]
    fn large_average_fails_step2() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(&[flow("9.9.9.9", "20.1.1.1", 6, 10, 1500)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_tcp, 1);
        assert_eq!(r.funnel.after_avg, 0);
    }

    #[test]
    fn boundary_average_survives_step2() {
        let rib = rib_with(&["20.0.0.0/8"]);
        // Exactly 44 bytes average: kept (threshold is ≤).
        let r = run_default(&[flow("9.9.9.9", "20.1.1.1", 6, 10, 44)], &rib);
        assert_eq!(r.dark.len(), 1);
    }

    #[test]
    fn originating_block_with_clean_host_is_gray() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.1", 6, 10, 40), // scan to host 1
                flow("20.1.1.50", "9.9.9.9", 6, 3, 40), // host 50 talks back
            ],
            &rib,
        );
        assert_eq!(r.gray.len(), 1);
        assert_eq!(r.dark.len(), 0);
    }

    #[test]
    fn fully_originating_block_fails_step3() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        // The only scanned host is also the one originating.
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.50", 6, 10, 40),
                flow("20.1.1.50", "9.9.9.9", 6, 3, 40),
            ],
            &rib,
        );
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_avg, 2, "both blocks had small TCP");
        // The scanner's own block (receiving the reply) is fully
        // originating too, so nothing survives step 3.
        assert_eq!(r.funnel.after_origin, 0);
    }

    #[test]
    fn spoof_tolerance_forgives_light_origination() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let records = [
            flow("9.9.9.9", "20.1.1.1", 6, 10, 40),
            flow("20.1.1.50", "9.9.9.9", 6, 2, 40), // 2 spoofed packets
        ];
        let stats = TrafficStats::from_records(&records);
        let strict = run(&stats, &rib, 1, 1, &PipelineConfig::default());
        assert!(strict.dark.is_empty());
        assert_eq!(strict.gray.len(), 1);
        let tolerant = run(
            &stats,
            &rib,
            1,
            1,
            &PipelineConfig {
                spoof_tolerance_packets: 2,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(tolerant.dark.len(), 1);
    }

    #[test]
    fn special_space_fails_step4() {
        let rib = rib_with(&["0.0.0.0/0"]);
        let r = run_default(&[flow("9.9.9.9", "10.1.1.1", 6, 10, 40)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_origin, 1);
        assert_eq!(r.funnel.after_special, 0);
    }

    #[test]
    fn unrouted_space_fails_step5() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let r = run_default(&[flow("9.9.9.9", "21.1.1.1", 6, 10, 40)], &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_special, 1);
        assert_eq!(r.funnel.after_routed, 0);
    }

    #[test]
    fn heavy_block_fails_step6() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let records = [flow("9.9.9.9", "20.1.1.1", 6, 2_000, 40)];
        let r = run_default(&records, &rib);
        assert_eq!(r.classified(), 0);
        assert_eq!(r.funnel.after_routed, 1);
        assert_eq!(r.funnel.after_volume, 0);
    }

    #[test]
    fn volume_cap_scales_with_sampling_and_days() {
        let rib = rib_with(&["20.0.0.0/8"]);
        let records = [flow("9.9.9.9", "20.1.1.1", 6, 2_000, 40)];
        let stats = TrafficStats::from_records(&records);
        // 2 000 sampled at rate 10 over 7 days → ≈ 2 857 true/day > 1 700.
        let week = run(&stats, &rib, 10, 7, &PipelineConfig::default());
        assert_eq!(week.classified(), 0);
        // Over 14 days the same count is within the cap.
        let fortnight = run(&stats, &rib, 10, 14, &PipelineConfig::default());
        assert_eq!(fortnight.dark.len(), 1);
    }

    #[test]
    fn mixed_sizes_become_unclean() {
        let rib = rib_with(&["20.0.0.0/8"]);
        // Host 1 gets clean SYNs; host 2 got one large TCP packet, but
        // the block average stays under 44.
        let r = run_default(
            &[
                flow("9.9.9.9", "20.1.1.1", 6, 100, 40),
                flow("9.9.9.9", "20.1.1.2", 6, 1, 200),
            ],
            &rib,
        );
        assert_eq!(r.unclean.len(), 1);
        assert_eq!(r.dark.len(), 0);
    }

    #[test]
    fn funnel_is_monotone() {
        let rib = rib_with(&["20.0.0.0/8", "9.0.0.0/8"]);
        let mut records = Vec::new();
        for i in 0..50u32 {
            records.push(flow(
                "9.9.9.9",
                &format!("20.1.{i}.1"),
                if i % 5 == 0 { 17 } else { 6 },
                10 + u64::from(i) * 60,
                if i % 3 == 0 { 1500 } else { 40 },
            ));
        }
        let r = run_default(&records, &rib);
        let f = r.funnel;
        assert!(f.seen >= f.after_tcp);
        assert!(f.after_tcp >= f.after_avg);
        assert!(f.after_avg >= f.after_origin);
        assert!(f.after_origin >= f.after_special);
        assert!(f.after_special >= f.after_routed);
        assert!(f.after_routed >= f.after_volume);
        assert_eq!(r.classified() as u64, f.after_volume);
    }
}
