//! The meta-telescope inference pipeline — the paper's contribution.
//!
//! Given per-/24 aggregates of sampled vantage-point flows (any
//! [`mt_flow::TrafficView`]: flat [`mt_flow::TrafficStats`] or sharded
//! [`mt_flow::ShardedTrafficStats`]), a RIB snapshot, and the
//! special-purpose registry, the [`engine::PipelineEngine`] executes the
//! filtering/classification stages of Section 4.2 and returns the
//! inferred **dark** (meta-telescope prefix), **unclean**, and **gray**
//! /24 sets plus per-stage funnel accounting (Figure 2). [`pipeline::run`]
//! is the serial compatibility wrapper over the standard stage vector;
//! [`engine::PipelineEngine::run_sharded`] evaluates shards in parallel
//! with bit-identical results.
//!
//! Around the pipeline:
//! - [`engine`] — the [`engine::Stage`] trait, the standard six stage
//!   implementations, and the serial/sharded traversal machinery;
//! - [`classifier`] — the packet-size fingerprint calibration of
//!   Section 4.1 / Table 3 (median vs average feature, threshold sweep,
//!   confusion matrices);
//! - [`spoofing`] — the unrouted-space spoofing tolerance of Section 7.2;
//! - [`combine`] — multi-day and multi-vantage-point combination;
//! - [`eval`] — evaluation against ground truth and the activity
//!   datasets (telescope coverage of Table 4, false-positive scrubbing);
//! - [`analysis`] — the measurement analyses of Sections 6 and 8
//!   (geography, network types, prefix index, port profiles);
//! - [`baseline`] — the naive origin-only comparator;
//! - [`render`] — Hilbert-map rendering for Figures 3/5/6;
//! - [`stability`] — day-over-day stability tracking (Section 7.1's
//!   operational recommendation);
//! - [`federate`] — combining inferences from several operators
//!   (Section 9's federated meta-telescopes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod classifier;
pub mod combine;
pub mod engine;
pub mod eval;
pub mod federate;
pub mod pipeline;
pub mod render;
pub mod spoofing;
pub mod stability;

pub use classifier::{ClassifierFeature, ConfusionMatrix};
pub use engine::{BlockCtx, PipelineEngine, Stage, StageEnv, Verdict};
pub use pipeline::{Funnel, PipelineConfig, PipelineResult, StageCount};
pub use spoofing::SpoofTolerance;
