//! Evaluation of pipeline output (Section 4.3).
//!
//! Three checks mirror the paper's: (i) can we re-discover the known
//! operational telescopes (Table 4); (ii) how many inferred-dark blocks
//! show activity in the auxiliary datasets (the 13.9 % false-positive
//! bound), and the final scrub that removes them; (iii) full precision /
//! recall against the simulator's ground truth — something the paper
//! could not compute but the reproduction can.

use mt_netmodel::{AuxDatasets, Internet, Telescope};
use mt_types::{Block24Set, Day};
use serde::{Deserialize, Serialize};

/// How much of a telescope's range the inference recovered (one cell of
/// Table 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelescopeCoverage {
    /// Telescope code.
    pub code: String,
    /// Total /24s of the telescope.
    pub total: u32,
    /// /24s that were actually dark through the window (TEU1's dynamic
    /// churn removes some).
    pub dark_in_window: u64,
    /// Inferred meta-telescope prefixes inside the range.
    pub inferred: u64,
}

impl TelescopeCoverage {
    /// Measures coverage of `telescope` by the inferred `dark` set over
    /// the window starting at `first` for `days` days. A telescope block
    /// counts as dark-in-window only if it stayed dark every day.
    pub fn measure(
        dark: &Block24Set,
        telescope: &Telescope,
        net: &Internet,
        first: Day,
        days: u32,
    ) -> Self {
        let mut dark_window: Block24Set = telescope.blocks().collect();
        for day in first.range(days) {
            dark_window.intersect_with(&telescope.dark_on(day, net.seed));
        }
        let range: Block24Set = telescope.blocks().collect();
        TelescopeCoverage {
            code: telescope.code.clone(),
            total: telescope.num_blocks,
            dark_in_window: dark_window.len() as u64,
            inferred: dark.intersection_len(&range) as u64,
        }
    }

    /// Recall over the stably-dark part of the telescope.
    pub fn recall(&self) -> f64 {
        if self.dark_in_window == 0 {
            0.0
        } else {
            self.inferred as f64 / self.dark_in_window as f64
        }
    }
}

/// Activity-dataset false-positive check and scrub (end of Section 4.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityCheck {
    /// Inferred dark blocks before scrubbing.
    pub inferred: u64,
    /// Of those, blocks with observed activity in any dataset.
    pub active_in_aux: u64,
}

impl ActivityCheck {
    /// Compares an inferred dark set against the activity datasets.
    pub fn run(dark: &Block24Set, aux: &AuxDatasets) -> Self {
        ActivityCheck {
            inferred: dark.len() as u64,
            active_in_aux: dark.intersection_len(&aux.union()) as u64,
        }
    }

    /// The paper's "13.9 %" figure: share of inferred blocks with known
    /// activity.
    pub fn fp_share(&self) -> f64 {
        if self.inferred == 0 {
            0.0
        } else {
            self.active_in_aux as f64 / self.inferred as f64
        }
    }
}

/// Removes known-active blocks from an inferred set (the final
/// correction producing the paper's Table 6 numbers).
pub fn scrub(dark: &Block24Set, aux: &AuxDatasets) -> Block24Set {
    dark.difference(&aux.union())
}

/// Precision/recall against the simulator's ground truth — unavailable
/// to the paper, exact here.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GroundTruthReport {
    /// Inferred dark blocks.
    pub inferred: u64,
    /// Inferred blocks that are truly dark every day of the window.
    pub truly_dark: u64,
    /// Inferred blocks that were active at some point in the window.
    pub truly_active: u64,
    /// All truly dark announced blocks (recall denominator).
    pub total_dark: u64,
}

impl GroundTruthReport {
    /// Evaluates an inferred set against ground truth for a window.
    pub fn evaluate(dark: &Block24Set, net: &Internet, first: Day, days: u32) -> Self {
        let mut stable_dark = net.dark_on(first);
        for day in first.range(days).skip(1) {
            stable_dark.intersect_with(&net.dark_on(day));
        }
        let truly_dark = dark.intersection_len(&stable_dark) as u64;
        GroundTruthReport {
            inferred: dark.len() as u64,
            truly_dark,
            truly_active: dark.len() as u64 - truly_dark,
            total_dark: stable_dark.len() as u64,
        }
    }

    /// Precision: inferred blocks that are truly dark.
    pub fn precision(&self) -> f64 {
        if self.inferred == 0 {
            0.0
        } else {
            self.truly_dark as f64 / self.inferred as f64
        }
    }

    /// Recall over all announced dark space.
    pub fn recall(&self) -> f64 {
        if self.total_dark == 0 {
            0.0
        } else {
            self.truly_dark as f64 / self.total_dark as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_netmodel::InternetConfig;
    use mt_types::Block24;

    fn net() -> Internet {
        Internet::generate(InternetConfig::small(), 4)
    }

    #[test]
    fn perfect_inference_has_full_coverage() {
        let net = net();
        let t = &net.telescopes[0]; // TUS1: no dynamic churn
        let dark: Block24Set = t.blocks().collect();
        let cov = TelescopeCoverage::measure(&dark, t, &net, Day(0), 1);
        assert_eq!(cov.inferred, u64::from(t.num_blocks));
        assert_eq!(cov.dark_in_window, u64::from(t.num_blocks));
        assert!((cov.recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_churn_shrinks_the_denominator() {
        let net = net();
        let teu1 = &net.telescopes[1];
        let cov = TelescopeCoverage::measure(&Block24Set::new(), teu1, &net, Day(0), 7);
        assert!(cov.dark_in_window < u64::from(teu1.num_blocks));
        assert_eq!(cov.inferred, 0);
        assert_eq!(cov.recall(), 0.0);
    }

    #[test]
    fn activity_check_counts_overlap() {
        let net = net();
        let aux = AuxDatasets::generate(&net);
        // Take some known-active blocks plus some dark ones.
        let mut inferred = Block24Set::new();
        let mut from_aux = 0;
        for b in aux.censys.iter().take(5) {
            inferred.insert(b);
            from_aux += 1;
        }
        for b in net.dark_truth.iter().take(20) {
            inferred.insert(b);
        }
        let check = ActivityCheck::run(&inferred, &aux);
        assert_eq!(check.inferred, 25);
        assert!(check.active_in_aux >= from_aux);
        let scrubbed = scrub(&inferred, &aux);
        assert_eq!(scrubbed.len() as u64, check.inferred - check.active_in_aux);
        assert_eq!(scrubbed.intersection_len(&aux.union()), 0);
    }

    #[test]
    fn ground_truth_report_on_exact_inference() {
        let net = net();
        let dark = net.dark_on(Day(0));
        let report = GroundTruthReport::evaluate(&dark, &net, Day(0), 1);
        assert!((report.precision() - 1.0).abs() < 1e-12);
        assert!((report.recall() - 1.0).abs() < 1e-12);
        assert_eq!(report.truly_active, 0);
    }

    #[test]
    fn ground_truth_report_flags_active_contamination() {
        let net = net();
        let mut inferred = Block24Set::new();
        let dark_block = net.dark_truth.iter().next().unwrap();
        let active_block = net.active_truth.iter().next().unwrap();
        inferred.insert(dark_block);
        inferred.insert(active_block);
        let report = GroundTruthReport::evaluate(&inferred, &net, Day(0), 1);
        assert_eq!(report.inferred, 2);
        assert_eq!(report.truly_dark, 1);
        assert_eq!(report.truly_active, 1);
        assert!((report.precision() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn multi_day_window_tightens_stable_dark() {
        let net = net();
        // TEU1's range flips between dark and user-allocated; the stable
        // dark set over 7 days is smaller than over 1 day.
        let teu1_range: Block24Set = net.telescopes[1].blocks().collect();
        let one = GroundTruthReport::evaluate(&teu1_range, &net, Day(0), 1);
        let week = GroundTruthReport::evaluate(&teu1_range, &net, Day(0), 7);
        assert!(week.truly_dark <= one.truly_dark);
        let _ = Block24::containing(mt_types::Ipv4(0)); // keep import used
    }
}
