//! Packet-size fingerprint calibration (Section 4.1, Table 3).
//!
//! The paper tunes a one-feature classifier on labeled ISP data: a /24
//! is called *dark* when the median (or average) size of TCP packets
//! destined to it is at most N bytes. This module derives the labels the
//! same way the paper does (blocks that receive traffic but originate
//! at most a noise floor are dark; blocks originating at least a volume
//! floor are active) and sweeps both features over a threshold grid,
//! producing the confusion matrices of Table 3.

use mt_flow::TrafficStats;
use mt_types::{Block24, Block24Set};
use serde::{Deserialize, Serialize};

/// Which per-/24 size statistic the classifier thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierFeature {
    /// Median TCP packet size (Table 3, upper half).
    Median,
    /// Average TCP packet size (Table 3, lower half — the paper's pick).
    Average,
}

impl ClassifierFeature {
    /// Human-readable label matching the paper's table.
    pub const fn label(self) -> &'static str {
        match self {
            ClassifierFeature::Median => "Median Packet Size",
            ClassifierFeature::Average => "Average Packet Size",
        }
    }
}

/// A binary confusion matrix where *positive* = "classified dark".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Classified dark, and truly dark.
    pub tp: u64,
    /// Classified dark, but truly active.
    pub fp: u64,
    /// Classified active, and truly active.
    pub tn: u64,
    /// Classified active, but truly dark.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// False positive rate: active blocks misread as dark.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// False negative rate: dark blocks misread as active.
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.fn_ + self.tp)
    }

    /// True positive rate (recall on dark).
    pub fn tpr(&self) -> f64 {
        1.0 - self.fnr()
    }

    /// True negative rate.
    pub fn tnr(&self) -> f64 {
        1.0 - self.fpr()
    }

    /// The F1 score as defined in the paper's footnote:
    /// `2·tp / (2·tp + fp + fn)`.
    pub fn f1(&self) -> f64 {
        ratio(2 * self.tp, 2 * self.tp + self.fp + self.fn_)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Ground-truth-style labels derived from border traffic, mirroring the
/// paper's procedure on the TUS1-host ISP.
#[derive(Debug, Clone)]
pub struct CalibrationLabels {
    /// Blocks that receive traffic but originate (almost) nothing.
    pub dark: Block24Set,
    /// Blocks originating at least the activity floor.
    pub active: Block24Set,
    /// Blocks receiving traffic (the labeling universe).
    pub receiving: usize,
}

impl CalibrationLabels {
    /// Derives labels from unsampled border stats restricted to `scope`
    /// (the ISP's announced blocks).
    ///
    /// * `active_floor` — minimum originated packets over the window for
    ///   an *active* label (the paper uses 10 M per week, 1:1000 scale
    ///   → 10 000);
    /// * blocks originating more than zero but under the floor get no
    ///   label, exactly like the paper's 7 923 − 5 835 discarded blocks.
    pub fn derive(stats: &TrafficStats, scope: &Block24Set, active_floor: u64) -> Self {
        let mut dark = Block24Set::new();
        let mut active = Block24Set::new();
        let mut receiving = 0;
        for (block, d) in stats.iter_dst() {
            if !scope.contains(block) || d.total_packets() == 0 {
                continue;
            }
            receiving += 1;
            let originated = stats.src(block).map(|s| s.packets).unwrap_or(0);
            if originated == 0 {
                dark.insert(block);
            } else if originated >= active_floor {
                active.insert(block);
            }
        }
        CalibrationLabels {
            dark,
            active,
            receiving,
        }
    }
}

/// Evaluates one `(feature, threshold)` cell of Table 3 on labeled data.
pub fn evaluate(
    stats: &TrafficStats,
    labels: &CalibrationLabels,
    feature: ClassifierFeature,
    threshold: u16,
) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::default();
    let mut tally = |block: Block24, truly_dark: bool| {
        let Some(d) = stats.dst(block) else { return };
        let classified_dark = match feature {
            ClassifierFeature::Median => d
                .median_tcp_size()
                .map(|med| med <= threshold)
                .unwrap_or(false),
            ClassifierFeature::Average => d
                .avg_tcp_size()
                .map(|avg| avg <= f64::from(threshold))
                .unwrap_or(false),
        };
        match (classified_dark, truly_dark) {
            (true, true) => m.tp += 1,
            (true, false) => m.fp += 1,
            (false, true) => m.fn_ += 1,
            (false, false) => m.tn += 1,
        }
    };
    for block in labels.dark.iter() {
        tally(block, true);
    }
    for block in labels.active.iter() {
        tally(block, false);
    }
    m
}

/// One row of the Table 3 sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepRow {
    /// The feature being thresholded.
    pub feature: ClassifierFeature,
    /// The threshold in bytes.
    pub threshold: u16,
    /// The resulting confusion matrix.
    pub matrix: ConfusionMatrix,
}

/// Runs the full Table 3 sweep: both features over `thresholds`.
pub fn sweep(
    stats: &TrafficStats,
    labels: &CalibrationLabels,
    thresholds: &[u16],
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for feature in [ClassifierFeature::Median, ClassifierFeature::Average] {
        for &threshold in thresholds {
            rows.push(SweepRow {
                feature,
                threshold,
                matrix: evaluate(stats, labels, feature, threshold),
            });
        }
    }
    rows
}

/// Picks the winning row the way the paper does: best F1, ties broken
/// toward the lower false-positive rate, then the lower threshold.
pub fn pick_best(rows: &[SweepRow]) -> Option<&SweepRow> {
    rows.iter().min_by(|a, b| {
        b.matrix
            .f1()
            .total_cmp(&a.matrix.f1())
            .then(a.matrix.fpr().total_cmp(&b.matrix.fpr()))
            .then(a.threshold.cmp(&b.threshold))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::FlowRecord;
    use mt_types::{Ipv4, SimTime};

    fn flow(src: &str, dst: &str, packets: u64, size: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            src_port: 4000,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * size,
        }
    }

    fn scope() -> Block24Set {
        "20.0.0.0/16"
            .parse::<mt_types::Prefix>()
            .unwrap()
            .blocks24()
            .collect()
    }

    #[test]
    fn confusion_matrix_rates() {
        let m = ConfusionMatrix {
            tp: 90,
            fp: 10,
            tn: 90,
            fn_: 10,
        };
        assert!((m.fpr() - 0.1).abs() < 1e-12);
        assert!((m.fnr() - 0.1).abs() < 1e-12);
        assert!((m.f1() - 0.9).abs() < 1e-12);
        assert!((m.tpr() - 0.9).abs() < 1e-12);
        assert!((m.tnr() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn labels_follow_the_papers_rule() {
        let records = [
            // 20.0.0.0/24: receives, never sends → dark.
            flow("9.9.9.9", "20.0.0.1", 10, 40),
            // 20.0.1.0/24: receives and sends plenty → active.
            flow("9.9.9.9", "20.0.1.1", 10, 40),
            flow("20.0.1.1", "9.9.9.9", 5_000, 600),
            // 20.0.2.0/24: receives but sends only a little → unlabeled.
            flow("9.9.9.9", "20.0.2.1", 10, 40),
            flow("20.0.2.1", "9.9.9.9", 10, 600),
            // 30.0.0.0/24: outside the scope → ignored.
            flow("9.9.9.9", "30.0.0.1", 10, 40),
        ];
        let stats = TrafficStats::from_records(&records);
        let labels = CalibrationLabels::derive(&stats, &scope(), 1_000);
        assert_eq!(labels.receiving, 3);
        assert_eq!(labels.dark.len(), 1);
        assert_eq!(labels.active.len(), 1);
        assert!(labels
            .dark
            .contains(Block24::containing(Ipv4::new(20, 0, 0, 0))));
        assert!(labels
            .active
            .contains(Block24::containing(Ipv4::new(20, 0, 1, 0))));
    }

    #[test]
    fn average_classifier_separates_clean_data() {
        // Dark block: 42-byte average. Active block: big inbound data.
        let records = [
            flow("9.9.9.9", "20.0.0.1", 100, 42),
            flow("9.9.9.9", "20.0.1.1", 10, 40),
            flow("8.8.8.8", "20.0.1.1", 500, 1_400),
            flow("20.0.1.1", "9.9.9.9", 5_000, 600),
        ];
        let stats = TrafficStats::from_records(&records);
        let labels = CalibrationLabels::derive(&stats, &scope(), 1_000);
        let m44 = evaluate(&stats, &labels, ClassifierFeature::Average, 44);
        assert_eq!(
            m44,
            ConfusionMatrix {
                tp: 1,
                fp: 0,
                tn: 1,
                fn_: 0
            }
        );
        // At 40 bytes the dark block's 42-byte average fails: FN.
        let m40 = evaluate(&stats, &labels, ClassifierFeature::Average, 40);
        assert_eq!(m40.fn_, 1);
        assert_eq!(m40.tp, 0);
    }

    #[test]
    fn median_classifier_fooled_by_ack_heavy_active_block() {
        // The active block's inbound is dominated by 40-byte ACKs with a
        // tail of data packets: median 40 (looks dark), average large.
        let records = [
            flow("9.9.9.9", "20.0.0.1", 100, 42),    // truly dark
            flow("9.9.9.9", "20.0.1.1", 900, 40),    // ACK stream
            flow("8.8.8.8", "20.0.1.1", 300, 1_400), // data
            flow("20.0.1.1", "9.9.9.9", 5_000, 600),
        ];
        let stats = TrafficStats::from_records(&records);
        let labels = CalibrationLabels::derive(&stats, &scope(), 1_000);
        let med = evaluate(&stats, &labels, ClassifierFeature::Median, 44);
        assert_eq!(med.fp, 1, "median calls the ACK-heavy active block dark");
        let avg = evaluate(&stats, &labels, ClassifierFeature::Average, 44);
        assert_eq!(avg.fp, 0, "average sees through it");
    }

    #[test]
    fn sweep_covers_grid_and_picks_low_fpr() {
        let records = [
            flow("9.9.9.9", "20.0.0.1", 100, 42),
            flow("9.9.9.9", "20.0.1.1", 10, 40),
            flow("8.8.8.8", "20.0.1.1", 500, 1_400),
            flow("20.0.1.1", "9.9.9.9", 5_000, 600),
        ];
        let stats = TrafficStats::from_records(&records);
        let labels = CalibrationLabels::derive(&stats, &scope(), 1_000);
        let rows = sweep(&stats, &labels, &[40, 42, 44, 46]);
        assert_eq!(rows.len(), 8);
        let best = pick_best(&rows).unwrap();
        assert_eq!(best.matrix.f1(), 1.0);
        // Perfect rows exist for both features at 44/46; the tie-break
        // settles on the lowest threshold of the best-FPR rows.
        assert!(best.threshold >= 42);
    }
}
