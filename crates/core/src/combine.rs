//! Multi-day and multi-vantage-point combination (Sections 6.1, 7.1).
//!
//! The paper combines observations two ways: merging several vantage
//! points for one day (Table 6's "All" row) and extending the window
//! over consecutive days (Table 4, Figure 9). Both reduce to merging
//! [`TrafficStats`] — counters add, host sets union — plus a RIB that
//! covers the window.

use crate::pipeline::{self, PipelineConfig, PipelineResult};
use mt_flow::TrafficStats;
use mt_netmodel::Internet;
use mt_types::{Asn, Day, PrefixTrie};
use parking_lot::Mutex;

/// Merges any number of stats into one (vantage-point union and/or
/// day concatenation). Panics if the inputs disagree on the per-host
/// size threshold.
pub fn merge_stats<I>(parts: I) -> TrafficStats
where
    I: IntoIterator<Item = TrafficStats>,
{
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for s in iter {
        acc.merge(&s);
    }
    acc
}

/// The union RIB of a multi-day window: a prefix is routed if any day's
/// snapshot carries it (conservative in the right direction — step 5
/// must only reject space that was *never* routed during the window).
pub fn rib_union(net: &Internet, first: Day, days: u32) -> PrefixTrie<Asn> {
    assert!(days > 0);
    let mut union = net.rib(first);
    for day in first.range(days).skip(1) {
        for (prefix, &asn) in net.rib(day).iter() {
            union.insert(prefix, asn);
        }
    }
    union
}

/// Merges stats with a parallel tree reduction (crossbeam scoped
/// threads). Equivalent to [`merge_stats`]; worthwhile when merging many
/// large per-vantage-point accumulators on a multi-core box.
pub fn merge_stats_parallel(mut parts: Vec<TrafficStats>, threads: usize) -> TrafficStats {
    assert!(threads >= 1);
    if parts.len() <= 1 || threads == 1 {
        return merge_stats(parts);
    }
    // Tree reduction: each round pairs adjacent accumulators and merges
    // the pairs concurrently.
    while parts.len() > 1 {
        let mut next: Vec<TrafficStats> = Vec::with_capacity(parts.len().div_ceil(2));
        let mut pairs: Vec<(TrafficStats, TrafficStats)> = Vec::new();
        let mut iter = parts.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => pairs.push((a, b)),
                None => next.push(a),
            }
        }
        let merged: Vec<Mutex<Option<TrafficStats>>> =
            pairs.iter().map(|_| Mutex::new(None)).collect();
        let chunk_size = pairs.len().div_ceil(threads).max(1);
        crossbeam::thread::scope(|scope| {
            for (chunk, slots) in pairs.chunks_mut(chunk_size).zip(merged.chunks(chunk_size)) {
                scope.spawn(move |_| {
                    for ((a, b), slot) in chunk.iter_mut().zip(slots) {
                        a.merge(b);
                        *slot.lock() = Some(std::mem::take(a));
                    }
                });
            }
        })
        .expect("merge worker panicked");
        next.extend(merged.into_iter().map(|m| m.into_inner().expect("filled")));
        parts = next;
    }
    parts.into_iter().next().unwrap_or_default()
}

/// Runs the pipeline over several independent stat sets concurrently
/// (e.g. the 14 per-vantage-point day results of Table 6), preserving
/// input order.
pub fn run_pipelines_parallel(
    inputs: &[&TrafficStats],
    rib: &PrefixTrie<Asn>,
    sampling_rate: u32,
    days: u32,
    config: &PipelineConfig,
    threads: usize,
) -> Vec<PipelineResult> {
    assert!(threads >= 1);
    let results: Vec<Mutex<Option<PipelineResult>>> =
        inputs.iter().map(|_| Mutex::new(None)).collect();
    let chunk = inputs.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|scope| {
        for (stats_chunk, result_chunk) in inputs.chunks(chunk).zip(results.chunks(chunk)) {
            scope.spawn(move |_| {
                for (stats, slot) in stats_chunk.iter().zip(result_chunk) {
                    *slot.lock() = Some(pipeline::run(stats, rib, sampling_rate, days, config));
                }
            });
        }
    })
    .expect("pipeline worker panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::FlowRecord;
    use mt_netmodel::InternetConfig;
    use mt_types::{Ipv4, SimTime};

    fn flow(dst: u32, packets: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: Ipv4::new(9, 9, 9, 9),
            dst: Ipv4(dst),
            src_port: 1,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * 40,
        }
    }

    #[test]
    fn merge_adds_counters() {
        let a = TrafficStats::from_records(&[flow(0x1400_0001, 3)]);
        let b = TrafficStats::from_records(&[flow(0x1400_0001, 4), flow(0x1500_0001, 1)]);
        let merged = merge_stats([a, b]);
        assert_eq!(merged.total_packets, 8);
        assert_eq!(merged.dst_block_count(), 2);
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let merged = merge_stats(std::iter::empty::<TrafficStats>());
        assert_eq!(merged.total_flows, 0);
    }

    #[test]
    fn parallel_merge_equals_sequential() {
        let mut parts = Vec::new();
        for i in 0..7u32 {
            let records: Vec<FlowRecord> = (0..50)
                .map(|j| flow(0x1400_0000 + i * 1000 + j, 1 + u64::from(j % 3)))
                .collect();
            parts.push(TrafficStats::from_records(&records));
        }
        let sequential = merge_stats(parts.clone());
        for threads in [1, 2, 4] {
            let parallel = merge_stats_parallel(parts.clone(), threads);
            assert_eq!(parallel.total_flows, sequential.total_flows);
            assert_eq!(parallel.total_packets, sequential.total_packets);
            assert_eq!(parallel.dst_block_count(), sequential.dst_block_count());
        }
    }

    #[test]
    fn parallel_pipelines_match_sequential_runs() {
        let sets: Vec<TrafficStats> = (0..5u32)
            .map(|i| {
                let records: Vec<FlowRecord> =
                    (0..40).map(|j| flow(0x1400_0000 + i * 777 + j, 2)).collect();
                TrafficStats::from_records(&records)
            })
            .collect();
        let refs: Vec<&TrafficStats> = sets.iter().collect();
        let rib: PrefixTrie<Asn> = [("20.0.0.0/8".parse().unwrap(), Asn(1))]
            .into_iter()
            .collect();
        let pc = PipelineConfig::default();
        let parallel = run_pipelines_parallel(&refs, &rib, 1, 1, &pc, 3);
        for (stats, result) in sets.iter().zip(&parallel) {
            let expected = pipeline::run(stats, &rib, 1, 1, &pc);
            assert_eq!(result.dark, expected.dark);
            assert_eq!(result.funnel, expected.funnel);
        }
    }

    #[test]
    fn rib_union_is_superset_of_each_day() {
        let net = Internet::generate(InternetConfig::small(), 9);
        let union = rib_union(&net, Day(0), 7);
        for day in Day(0).range(7) {
            let daily = net.rib(day);
            assert!(union.len() >= daily.len());
            for (prefix, _) in daily.iter() {
                assert!(union.get(prefix).is_some(), "{prefix} missing from union");
            }
        }
    }
}
