//! Multi-day and multi-vantage-point combination (Sections 6.1, 7.1).
//!
//! The paper combines observations two ways: merging several vantage
//! points for one day (Table 6's "All" row) and extending the window
//! over consecutive days (Table 4, Figure 9). Both reduce to merging
//! [`TrafficStats`] — counters add, host sets union — plus a RIB that
//! covers the window.

use crate::pipeline::{self, PipelineConfig, PipelineResult};
use mt_flow::{ShardedTrafficStats, TrafficStats};
use mt_netmodel::Internet;
use mt_types::{Asn, Day, PrefixTrie};
use parking_lot::Mutex;

/// Merges any number of stats into one (vantage-point union and/or
/// day concatenation).
///
/// An **empty** iterator yields `TrafficStats::default()` — zero
/// counters with the default per-host size threshold
/// ([`mt_flow::stats::DEFAULT_SIZE_THRESHOLD`]). Callers that need a
/// non-default threshold on the empty window must construct it
/// themselves via [`TrafficStats::with_size_threshold`]; the threshold
/// cannot be inferred from zero parts.
///
/// # Panics
///
/// Panics if the inputs disagree on the per-host size threshold — the
/// "big packet" host sets of the parts would not be comparable.
pub fn merge_stats<I>(parts: I) -> TrafficStats
where
    I: IntoIterator<Item = TrafficStats>,
{
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for s in iter {
        acc.merge(&s);
    }
    acc
}

/// The union RIB of a multi-day window: a prefix is routed if any day's
/// snapshot carries it (conservative in the right direction — step 5
/// must only reject space that was *never* routed during the window).
pub fn rib_union(net: &Internet, first: Day, days: u32) -> PrefixTrie<Asn> {
    assert!(days > 0);
    let mut union = net.rib(first);
    for day in first.range(days).skip(1) {
        for (prefix, &asn) in net.rib(day).iter() {
            union.insert(prefix, asn);
        }
    }
    union
}

/// Merges per-part stats into a sharded accumulator with a shard-wise
/// parallel reduction: each worker owns a contiguous range of shards
/// and, per shard, folds in just the matching blocks of every part.
///
/// Equivalent in content to [`merge_stats`] (modulo the sharded
/// representation); worthwhile when merging many large
/// per-vantage-point accumulators on a multi-core box, and the natural
/// input for [`crate::engine::PipelineEngine::run_sharded`].
pub fn merge_stats_sharded(
    parts: &[TrafficStats],
    num_shards: usize,
    threads: usize,
) -> ShardedTrafficStats {
    assert!(threads >= 1);
    ShardedTrafficStats::from_parts_parallel(parts, num_shards, threads)
}

/// Merges stats in parallel, returning the flat representation.
/// Equivalent to [`merge_stats`] (same empty-input and
/// threshold-mismatch behaviour).
///
/// Since the sharded-stats refactor this is a shard-wise reduction
/// ([`merge_stats_sharded`] + [`ShardedTrafficStats::into_unsharded`])
/// instead of a tree reduction over pairwise merges: workers own
/// disjoint shard ranges, so no block is merged more than once and no
/// intermediate accumulators are cloned.
pub fn merge_stats_parallel(parts: Vec<TrafficStats>, threads: usize) -> TrafficStats {
    assert!(threads >= 1);
    if parts.len() <= 1 || threads == 1 {
        return merge_stats(parts);
    }
    // 4 shards per worker keeps the per-shard scan cost balanced even
    // when block keys cluster.
    merge_stats_sharded(&parts, threads * 4, threads).into_unsharded()
}

/// Runs the pipeline over several independent stat sets concurrently
/// (e.g. the 14 per-vantage-point day results of Table 6), preserving
/// input order.
pub fn run_pipelines_parallel(
    inputs: &[&TrafficStats],
    rib: &PrefixTrie<Asn>,
    sampling_rate: u32,
    days: u32,
    config: &PipelineConfig,
    threads: usize,
) -> Vec<PipelineResult> {
    assert!(threads >= 1);
    let results: Vec<Mutex<Option<PipelineResult>>> =
        inputs.iter().map(|_| Mutex::new(None)).collect();
    let chunk = inputs.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|scope| {
        for (stats_chunk, result_chunk) in inputs.chunks(chunk).zip(results.chunks(chunk)) {
            scope.spawn(move |_| {
                for (stats, slot) in stats_chunk.iter().zip(result_chunk) {
                    // lock: core.combine_slot
                    *slot.lock() = Some(pipeline::run(*stats, rib, sampling_rate, days, config));
                }
            });
        }
    })
    // check: allow(no_panic, "scope() errs only if a worker panicked; re-raising on the coordinator is intended")
    .expect("pipeline worker panicked");
    results
        .into_iter()
        // check: allow(no_panic, "the scope above writes every slot exactly once before joining")
        .map(|m| m.into_inner().expect("filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_flow::FlowRecord;
    use mt_netmodel::InternetConfig;
    use mt_types::{Ipv4, SimTime};

    fn flow(dst: u32, packets: u64) -> FlowRecord {
        FlowRecord {
            start: SimTime(0),
            src: Ipv4::new(9, 9, 9, 9),
            dst: Ipv4(dst),
            src_port: 1,
            dst_port: 23,
            protocol: 6,
            tcp_flags: 2,
            packets,
            octets: packets * 40,
        }
    }

    #[test]
    fn merge_adds_counters() {
        let a = TrafficStats::from_records(&[flow(0x1400_0001, 3)]);
        let b = TrafficStats::from_records(&[flow(0x1400_0001, 4), flow(0x1500_0001, 1)]);
        let merged = merge_stats([a, b]);
        assert_eq!(merged.total_packets, 8);
        assert_eq!(merged.dst_block_count(), 2);
    }

    #[test]
    fn merge_of_nothing_is_empty_with_default_threshold() {
        // The empty window is explicitly defined: zero counters, default
        // size threshold (documented on `merge_stats`).
        let merged = merge_stats(std::iter::empty::<TrafficStats>());
        assert_eq!(merged.total_flows, 0);
        assert_eq!(merged.total_packets, 0);
        assert_eq!(merged.dst_block_count(), 0);
        assert_eq!(
            merged.size_threshold(),
            mt_flow::stats::DEFAULT_SIZE_THRESHOLD
        );
    }

    #[test]
    #[should_panic(expected = "different host-size thresholds")]
    fn merge_rejects_mismatched_thresholds() {
        // Parts built against different "big packet" thresholds have
        // incomparable host sets; merging them must panic, not silently
        // pick one threshold.
        let a = TrafficStats::with_size_threshold(44);
        let b = TrafficStats::with_size_threshold(100);
        let _ = merge_stats([a, b]);
    }

    #[test]
    #[should_panic(expected = "different host-size thresholds")]
    fn parallel_merge_rejects_mismatched_thresholds() {
        let a = TrafficStats::with_size_threshold(44);
        let b = TrafficStats::with_size_threshold(100);
        let c = TrafficStats::with_size_threshold(44);
        let _ = merge_stats_parallel(vec![a, b, c], 2);
    }

    #[test]
    fn parallel_merge_equals_sequential() {
        let mut parts = Vec::new();
        for i in 0..7u32 {
            let records: Vec<FlowRecord> = (0..50)
                .map(|j| flow(0x1400_0000 + i * 1000 + j, 1 + u64::from(j % 3)))
                .collect();
            parts.push(TrafficStats::from_records(&records));
        }
        let sequential = merge_stats(parts.clone());
        for threads in [1, 2, 4] {
            let parallel = merge_stats_parallel(parts.clone(), threads);
            assert_eq!(parallel.total_flows, sequential.total_flows);
            assert_eq!(parallel.total_packets, sequential.total_packets);
            assert_eq!(parallel.dst_block_count(), sequential.dst_block_count());
        }
    }

    #[test]
    fn sharded_merge_matches_flat_merge() {
        let mut parts = Vec::new();
        for i in 0..5u32 {
            let records: Vec<FlowRecord> = (0..60)
                .map(|j| flow(0x1400_0000 + i * 500 + j * 13, 1 + u64::from(j % 4)))
                .collect();
            parts.push(TrafficStats::from_records(&records));
        }
        let flat = merge_stats(parts.clone());
        let sharded = merge_stats_sharded(&parts, 8, 3);
        assert_eq!(sharded.num_shards(), 8);
        let reassembled = sharded.into_unsharded();
        assert_eq!(reassembled.total_flows, flat.total_flows);
        assert_eq!(reassembled.total_packets, flat.total_packets);
        assert_eq!(reassembled.total_octets, flat.total_octets);
        assert_eq!(reassembled.dst_block_count(), flat.dst_block_count());
        for (block, d) in flat.iter_dst() {
            let r = reassembled.dst(block).expect("block present");
            assert_eq!(r.tcp_packets, d.tcp_packets);
            assert_eq!(r.tcp_octets, d.tcp_octets);
        }
    }

    #[test]
    fn parallel_pipelines_match_sequential_runs() {
        let sets: Vec<TrafficStats> = (0..5u32)
            .map(|i| {
                let records: Vec<FlowRecord> = (0..40)
                    .map(|j| flow(0x1400_0000 + i * 777 + j, 2))
                    .collect();
                TrafficStats::from_records(&records)
            })
            .collect();
        let refs: Vec<&TrafficStats> = sets.iter().collect();
        let rib: PrefixTrie<Asn> = [("20.0.0.0/8".parse().unwrap(), Asn(1))]
            .into_iter()
            .collect();
        let pc = PipelineConfig::default();
        let parallel = run_pipelines_parallel(&refs, &rib, 1, 1, &pc, 3);
        for (stats, result) in sets.iter().zip(&parallel) {
            let expected = pipeline::run(stats, &rib, 1, 1, &pc);
            assert_eq!(result.dark, expected.dark);
            assert_eq!(result.funnel, expected.funnel);
        }
    }

    #[test]
    fn rib_union_is_superset_of_each_day() {
        let net = Internet::generate(InternetConfig::small(), 9);
        let union = rib_union(&net, Day(0), 7);
        for day in Day(0).range(7) {
            let daily = net.rib(day);
            assert!(union.len() >= daily.len());
            for (prefix, _) in daily.iter() {
                assert!(union.get(prefix).is_some(), "{prefix} missing from union");
            }
        }
    }
}
