//! Federated meta-telescopes (Section 9, "Federated Meta-telescopes").
//!
//! The paper proposes sharing detection among trusted parties "to detect
//! meta-telescope prefixes with higher accuracy collectively". This
//! module implements that combination: each operator contributes an
//! inferred set (optionally weighted by trust), and a block enters the
//! federated meta-telescope when its accumulated weight reaches a
//! quorum. A block any operator *disqualified* (observed originating —
//! the strongest negative signal) can be vetoed regardless of quorum.

use mt_types::{Block24, Block24Set};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One operator's contribution.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Operator label (diagnostics).
    pub operator: String,
    /// Trust weight (1.0 = one full vote).
    pub weight: f64,
    /// Blocks the operator inferred dark.
    pub inferred: Block24Set,
    /// Blocks the operator positively observed originating traffic
    /// (veto candidates).
    pub vetoed: Block24Set,
}

/// Federation policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FederationPolicy {
    /// Accumulated weight required for acceptance.
    pub quorum: f64,
    /// Whether any single veto removes a block.
    pub veto_enabled: bool,
}

impl Default for FederationPolicy {
    fn default() -> Self {
        FederationPolicy {
            quorum: 2.0,
            veto_enabled: true,
        }
    }
}

/// Result of federating several contributions.
#[derive(Debug, Clone)]
pub struct FederatedResult {
    /// The agreed meta-telescope.
    pub accepted: Block24Set,
    /// Blocks that met quorum but were vetoed.
    pub vetoed: Block24Set,
    /// Per-operator count of accepted blocks they contributed to.
    pub operator_support: HashMap<String, u64>,
}

/// Combines contributions under a policy.
pub fn federate(contributions: &[Contribution], policy: &FederationPolicy) -> FederatedResult {
    assert!(policy.quorum > 0.0);
    let mut weights: HashMap<u32, f64> = HashMap::new();
    for c in contributions {
        assert!(c.weight >= 0.0, "negative trust weight for {}", c.operator);
        for block in c.inferred.iter() {
            *weights.entry(block.0).or_default() += c.weight;
        }
    }
    let mut veto_union = Block24Set::new();
    if policy.veto_enabled {
        for c in contributions {
            veto_union.union_with(&c.vetoed);
        }
    }
    let mut accepted = Block24Set::new();
    let mut vetoed = Block24Set::new();
    // Quorum comparison with a tolerance for float accumulation.
    let threshold = policy.quorum - 1e-9;
    for (&b, &w) in &weights {
        if w >= threshold {
            let block = Block24(b);
            if policy.veto_enabled && veto_union.contains(block) {
                vetoed.insert(block);
            } else {
                accepted.insert(block);
            }
        }
    }
    let operator_support = contributions
        .iter()
        .map(|c| {
            (
                c.operator.clone(),
                c.inferred.intersection_len(&accepted) as u64,
            )
        })
        .collect();
    FederatedResult {
        accepted,
        vetoed,
        operator_support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(blocks: &[u32]) -> Block24Set {
        blocks.iter().map(|&b| Block24(b)).collect()
    }

    fn contrib(op: &str, weight: f64, inferred: &[u32], vetoed: &[u32]) -> Contribution {
        Contribution {
            operator: op.to_owned(),
            weight,
            inferred: set(inferred),
            vetoed: set(vetoed),
        }
    }

    #[test]
    fn quorum_of_two_requires_agreement() {
        let result = federate(
            &[
                contrib("ixp-a", 1.0, &[1, 2, 3], &[]),
                contrib("ixp-b", 1.0, &[2, 3, 4], &[]),
                contrib("isp-c", 1.0, &[3], &[]),
            ],
            &FederationPolicy::default(),
        );
        assert_eq!(result.accepted, set(&[2, 3]));
        assert_eq!(result.operator_support["isp-c"], 1);
        assert_eq!(result.operator_support["ixp-a"], 2);
    }

    #[test]
    fn trust_weights_count() {
        // A highly trusted operator alone meets the quorum.
        let result = federate(
            &[
                contrib("anchor", 2.0, &[10], &[]),
                contrib("small", 0.5, &[11], &[]),
            ],
            &FederationPolicy::default(),
        );
        assert_eq!(result.accepted, set(&[10]));
    }

    #[test]
    fn veto_overrides_quorum() {
        let policy = FederationPolicy::default();
        let result = federate(
            &[
                contrib("a", 1.0, &[1, 2], &[]),
                contrib("b", 1.0, &[1, 2], &[2]),
            ],
            &policy,
        );
        assert_eq!(result.accepted, set(&[1]));
        assert_eq!(result.vetoed, set(&[2]));
    }

    #[test]
    fn veto_can_be_disabled() {
        let policy = FederationPolicy {
            veto_enabled: false,
            ..FederationPolicy::default()
        };
        let result = federate(
            &[
                contrib("a", 1.0, &[1, 2], &[]),
                contrib("b", 1.0, &[1, 2], &[2]),
            ],
            &policy,
        );
        assert_eq!(result.accepted, set(&[1, 2]));
        assert!(result.vetoed.is_empty());
    }

    #[test]
    fn no_contributions_yield_nothing() {
        let result = federate(&[], &FederationPolicy::default());
        assert!(result.accepted.is_empty());
        assert!(result.operator_support.is_empty());
    }

    #[test]
    fn fractional_quorum_accumulates() {
        let result = federate(
            &[
                contrib("a", 0.5, &[7], &[]),
                contrib("b", 0.5, &[7], &[]),
                contrib("c", 0.5, &[8], &[]),
            ],
            &FederationPolicy {
                quorum: 1.0,
                veto_enabled: true,
            },
        );
        assert_eq!(result.accepted, set(&[7]));
    }
}
