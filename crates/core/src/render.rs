//! Hilbert-map rendering (Figures 3, 5 and 6).
//!
//! Every /24 of a covering prefix maps to one cell of a Hilbert curve;
//! adjacency in address space is preserved on the plane, so contiguous
//! dark ranges appear as solid shapes. Two outputs: ASCII art for
//! terminals/test assertions, and binary PPM (P6) images for reports.

use mt_types::hilbert::order_for_prefix_len;
use mt_types::{Block24, Block24Set, HilbertCurve, Prefix};

/// A renderable Hilbert map of one covering prefix.
#[derive(Debug, Clone)]
pub struct HilbertMap {
    covering: Prefix,
    curve: HilbertCurve,
}

impl HilbertMap {
    /// Creates a map for a covering prefix (must be /24 or shorter).
    pub fn new(covering: Prefix) -> Self {
        assert!(covering.len() <= 24, "need at least one /24 to draw");
        HilbertMap {
            covering,
            curve: HilbertCurve::new(order_for_prefix_len(covering.len())),
        }
    }

    /// Grid side length in cells.
    pub fn side(&self) -> u32 {
        self.curve.side()
    }

    /// The cell of a block, or `None` if outside the covering prefix.
    pub fn cell_of(&self, block: Block24) -> Option<(u32, u32)> {
        if !self.covering.contains(block.base()) {
            return None;
        }
        let offset = u64::from(block.0 - self.covering.base().block24_index());
        Some(self.curve.d2xy(offset))
    }

    /// The block at a cell, if the cell maps inside the covering prefix
    /// (for non-square prefixes — odd lengths — half the grid is empty).
    pub fn block_at(&self, x: u32, y: u32) -> Option<Block24> {
        let d = self.curve.xy2d(x, y);
        let count = u64::from(self.covering.num_blocks24());
        (d < count).then(|| Block24(self.covering.base().block24_index() + d as u32))
    }

    /// Renders ASCII art: `#` for members of `set`, `+` for cells inside
    /// `boundary` (if given) that are not members, `@` for both, `·` for
    /// everything else inside the covering prefix, and space for cells
    /// outside it.
    pub fn ascii(&self, set: &Block24Set, boundary: Option<&Block24Set>) -> String {
        let side = self.side();
        let mut out = String::with_capacity(((side + 1) * side) as usize);
        for y in 0..side {
            for x in 0..side {
                let ch = match self.block_at(x, y) {
                    None => ' ',
                    Some(block) => {
                        let in_set = set.contains(block);
                        let in_boundary = boundary.is_some_and(|b| b.contains(block));
                        match (in_set, in_boundary) {
                            (true, true) => '@',
                            (true, false) => '#',
                            (false, true) => '+',
                            (false, false) => '·',
                        }
                    }
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }

    /// Renders a P6 PPM image: members of `set` in blue, `boundary`-only
    /// cells in gray, other covered cells white, uncovered cells black.
    pub fn ppm(&self, set: &Block24Set, boundary: Option<&Block24Set>) -> Vec<u8> {
        let side = self.side();
        let mut out = format!("P6\n{side} {side}\n255\n").into_bytes();
        for y in 0..side {
            for x in 0..side {
                let rgb: [u8; 3] = match self.block_at(x, y) {
                    None => [0, 0, 0],
                    Some(block) => {
                        let in_set = set.contains(block);
                        let in_boundary = boundary.is_some_and(|b| b.contains(block));
                        match (in_set, in_boundary) {
                            (true, _) => [30, 80, 220],
                            (false, true) => [150, 150, 150],
                            (false, false) => [245, 245, 245],
                        }
                    }
                };
                out.extend_from_slice(&rgb);
            }
        }
        out
    }

    /// Fraction of covered cells that are members of `set`.
    pub fn density(&self, set: &Block24Set) -> f64 {
        let covered = self.covering.num_blocks24();
        set.count_in_prefix(self.covering) as f64 / f64::from(covered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::Ipv4;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn cells_are_bijective_within_the_prefix() {
        let map = HilbertMap::new(p("20.0.0.0/16"));
        assert_eq!(map.side(), 16);
        let mut seen = std::collections::HashSet::new();
        for block in p("20.0.0.0/16").blocks24() {
            let cell = map.cell_of(block).unwrap();
            assert!(seen.insert(cell), "cell reused: {cell:?}");
            assert_eq!(map.block_at(cell.0, cell.1), Some(block));
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn outside_blocks_have_no_cell() {
        let map = HilbertMap::new(p("20.0.0.0/16"));
        assert_eq!(
            map.cell_of(Block24::containing(Ipv4::new(21, 0, 0, 0))),
            None
        );
    }

    #[test]
    fn odd_prefix_lengths_leave_half_the_grid_empty() {
        let map = HilbertMap::new(p("20.0.0.0/17"));
        assert_eq!(map.side(), 16); // order 4 grid, 128 of 256 cells used
        let used = (0..16)
            .flat_map(|y| (0..16).map(move |x| (x, y)))
            .filter(|&(x, y)| map.block_at(x, y).is_some())
            .count();
        assert_eq!(used, 128);
        let art = map.ascii(&Block24Set::new(), None);
        assert_eq!(art.matches(' ').count(), 128);
    }

    #[test]
    fn ascii_marks_members_and_boundary() {
        let covering = p("20.0.0.0/22"); // 4 blocks, 2x2 grid
        let map = HilbertMap::new(covering);
        let mut set = Block24Set::new();
        set.insert(Block24::containing(Ipv4::new(20, 0, 0, 0)));
        let mut boundary = Block24Set::new();
        boundary.insert(Block24::containing(Ipv4::new(20, 0, 0, 0)));
        boundary.insert(Block24::containing(Ipv4::new(20, 0, 1, 0)));
        let art = map.ascii(&set, Some(&boundary));
        assert_eq!(art.matches('@').count(), 1);
        assert_eq!(art.matches('+').count(), 1);
        assert_eq!(art.matches('·').count(), 2);
    }

    #[test]
    fn ppm_has_correct_size_and_header() {
        let map = HilbertMap::new(p("20.0.0.0/16"));
        let img = map.ppm(&Block24Set::new(), None);
        let header = b"P6\n16 16\n255\n";
        assert!(img.starts_with(header));
        assert_eq!(img.len(), header.len() + 16 * 16 * 3);
    }

    #[test]
    fn density_matches_membership() {
        let covering = p("20.0.0.0/22");
        let map = HilbertMap::new(covering);
        let mut set = Block24Set::new();
        set.insert(Block24::containing(Ipv4::new(20, 0, 0, 0)));
        set.insert(Block24::containing(Ipv4::new(20, 0, 3, 0)));
        set.insert(Block24::containing(Ipv4::new(99, 0, 0, 0))); // outside
        assert!((map.density(&set) - 0.5).abs() < 1e-12);
    }
}
