//! Prefix stability across days (Section 7.1).
//!
//! The paper recommends checking whether a prefix is inferred on
//! multiple days before trusting it, and re-running the inference daily
//! to track routing and allocation churn. [`StabilityTracker`] ingests
//! one inferred set per day and answers: which blocks were inferred on
//! at least `k` of the last `n` days, which are new today, which
//! disappeared — the operational "stable meta-telescope" feed.

use mt_types::{Block24, Block24Set, Day};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tracks per-day inference results and derives stable sets.
#[derive(Debug, Clone, Default)]
pub struct StabilityTracker {
    days: Vec<(Day, Block24Set)>,
}

/// Day-over-day churn between two inferred sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Churn {
    /// Blocks inferred today but not yesterday.
    pub appeared: u64,
    /// Blocks inferred yesterday but not today.
    pub disappeared: u64,
    /// Blocks inferred on both days.
    pub retained: u64,
}

impl StabilityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the inference result of one day. Days must be recorded in
    /// increasing order.
    pub fn record(&mut self, day: Day, inferred: Block24Set) {
        if let Some((last, _)) = self.days.last() {
            assert!(day > *last, "days must be recorded in order");
        }
        self.days.push((day, inferred));
    }

    /// Number of recorded days.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Blocks inferred on *every* recorded day.
    pub fn always_inferred(&self) -> Block24Set {
        let mut iter = self.days.iter();
        let Some((_, first)) = iter.next() else {
            return Block24Set::new();
        };
        let mut acc = first.clone();
        for (_, set) in iter {
            acc.intersect_with(set);
        }
        acc
    }

    /// Blocks inferred on at least `k` of the recorded days.
    ///
    /// `k = 1` is the union; `k = len()` equals
    /// [`StabilityTracker::always_inferred`].
    pub fn stable(&self, k: usize) -> Block24Set {
        assert!(k >= 1, "k must be at least 1");
        if self.days.is_empty() {
            return Block24Set::new();
        }
        // Count appearances; bounded by the union's size.
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for (_, set) in &self.days {
            for block in set.iter() {
                *counts.entry(block.0).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c as usize >= k)
            .map(|(b, _)| Block24(b))
            .collect()
    }

    /// Churn between the last two recorded days, if both exist.
    pub fn latest_churn(&self) -> Option<Churn> {
        let n = self.days.len();
        if n < 2 {
            return None;
        }
        let (_, yesterday) = &self.days[n - 2];
        let (_, today) = &self.days[n - 1];
        let retained = today.intersection_len(yesterday) as u64;
        Some(Churn {
            appeared: today.len() as u64 - retained,
            disappeared: yesterday.len() as u64 - retained,
            retained,
        })
    }

    /// Per-day inferred counts (the Figure 8 series).
    pub fn daily_counts(&self) -> Vec<(Day, usize)> {
        self.days.iter().map(|(d, s)| (*d, s.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(blocks: &[u32]) -> Block24Set {
        blocks.iter().map(|&b| Block24(b)).collect()
    }

    #[test]
    fn always_inferred_is_the_intersection() {
        let mut t = StabilityTracker::new();
        t.record(Day(0), set(&[1, 2, 3]));
        t.record(Day(1), set(&[2, 3, 4]));
        t.record(Day(2), set(&[3, 4, 5]));
        let stable = t.always_inferred();
        assert_eq!(stable.len(), 1);
        assert!(stable.contains(Block24(3)));
    }

    #[test]
    fn stable_k_interpolates_between_union_and_intersection() {
        let mut t = StabilityTracker::new();
        t.record(Day(0), set(&[1, 2, 3]));
        t.record(Day(1), set(&[2, 3, 4]));
        t.record(Day(2), set(&[3, 4, 5]));
        assert_eq!(t.stable(1).len(), 5); // union
        assert_eq!(t.stable(2), set(&[2, 3, 4]));
        assert_eq!(t.stable(3), t.always_inferred());
    }

    #[test]
    fn churn_reports_deltas() {
        let mut t = StabilityTracker::new();
        t.record(Day(0), set(&[1, 2, 3]));
        assert_eq!(t.latest_churn(), None);
        t.record(Day(1), set(&[2, 3, 4, 5]));
        assert_eq!(
            t.latest_churn(),
            Some(Churn {
                appeared: 2,
                disappeared: 1,
                retained: 2
            })
        );
    }

    #[test]
    fn daily_counts_follow_recording() {
        let mut t = StabilityTracker::new();
        t.record(Day(3), set(&[1]));
        t.record(Day(4), set(&[1, 2]));
        assert_eq!(t.daily_counts(), vec![(Day(3), 1), (Day(4), 2)]);
    }

    #[test]
    #[should_panic(expected = "days must be recorded in order")]
    fn out_of_order_recording_rejected() {
        let mut t = StabilityTracker::new();
        t.record(Day(5), set(&[1]));
        t.record(Day(4), set(&[1]));
    }

    #[test]
    fn empty_tracker_edge_cases() {
        let t = StabilityTracker::new();
        assert!(t.is_empty());
        assert!(t.always_inferred().is_empty());
        assert!(t.stable(1).is_empty());
        assert_eq!(t.latest_churn(), None);
    }
}
