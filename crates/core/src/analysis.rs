//! Measurement analyses over inferred meta-telescope prefixes
//! (Sections 6 and 8).
//!
//! Everything here is a pure aggregation of an inferred [`Block24Set`]
//! against the Internet's metadata: per-country counts (Figure 4),
//! per-AS and per-country summaries (Table 6), network-type × continent
//! breakdowns (Table 7), the prefix-index ECDFs (Figures 7/16/17), and
//! the port-activity matrices behind the bean plots (Figures 11/12 and
//! 18–20).

use mt_netmodel::Internet;
use mt_types::{Block24Set, Continent, Country, NetworkType};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One row of Table 6: blocks, distinct ASes, distinct countries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceSummary {
    /// Label (vantage-point code or "All").
    pub label: String,
    /// Inferred meta-telescope /24s.
    pub blocks: u64,
    /// Distinct origin ASes.
    pub ases: u64,
    /// Distinct countries.
    pub countries: u64,
}

/// Summarises an inferred set (one Table 6 row).
pub fn summarize(label: &str, dark: &Block24Set, net: &Internet) -> InferenceSummary {
    let mut ases = HashSet::new();
    let mut countries = HashSet::new();
    for block in dark.iter() {
        if let Some(info) = net.block_info(block) {
            ases.insert(info.as_idx);
            countries.insert(net.ases[info.as_idx as usize].country);
        }
    }
    InferenceSummary {
        label: label.to_owned(),
        blocks: dark.len() as u64,
        ases: ases.len() as u64,
        countries: countries.len() as u64,
    }
}

/// Per-country block counts, descending (Figure 4's world map data).
pub fn by_country(dark: &Block24Set, net: &Internet) -> Vec<(Country, u64)> {
    let mut counts: HashMap<Country, u64> = HashMap::new();
    for block in dark.iter() {
        if let Some(a) = net.as_of_block(block) {
            *counts.entry(a.country).or_default() += 1;
        }
    }
    let mut v: Vec<(Country, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Table 7: counts per continent × network type, with totals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TypeContinentMatrix {
    /// `counts[continent_index][type_index]`, indices following
    /// [`Continent::ALL`] and [`NetworkType::ALL`].
    pub counts: Vec<Vec<u64>>,
}

impl TypeContinentMatrix {
    /// Builds the matrix for an inferred set.
    pub fn build(dark: &Block24Set, net: &Internet) -> Self {
        let mut counts = vec![vec![0u64; NetworkType::ALL.len()]; Continent::ALL.len()];
        for block in dark.iter() {
            if let Some(a) = net.as_of_block(block) {
                let ci = a.continent.index();
                let ti = a.network_type.index();
                counts[ci][ti] += 1;
            }
        }
        TypeContinentMatrix { counts }
    }

    /// Count for one cell.
    pub fn get(&self, continent: Continent, ty: NetworkType) -> u64 {
        let ci = continent.index();
        let ti = ty.index();
        self.counts[ci][ti]
    }

    /// Row total for a continent.
    pub fn continent_total(&self, continent: Continent) -> u64 {
        let ci = continent.index();
        self.counts[ci].iter().sum()
    }

    /// Column total for a network type.
    pub fn type_total(&self, ty: NetworkType) -> u64 {
        let ti = ty.index();
        self.counts.iter().map(|row| row[ti]).sum()
    }

    /// Grand total.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

/// The prefix index of Section 6.4: for every announcement of length
/// `prefix_len`, the share of its /24s inferred dark. Returns the shares
/// sorted ascending (ready for ECDF plotting).
pub fn prefix_index(dark: &Block24Set, net: &Internet, prefix_len: u8) -> Vec<f64> {
    let mut shares = Vec::new();
    for ann in &net.announcements {
        if ann.prefix.len() != prefix_len {
            continue;
        }
        let covered = dark.count_in_prefix(ann.prefix);
        shares.push(covered as f64 / f64::from(ann.prefix.num_blocks24()));
    }
    shares.sort_by(f64::total_cmp);
    shares
}

/// Per-network-type (Figure 16) or per-continent (Figure 17) dark-share
/// distributions across announcements.
pub fn share_by_group<F, K>(dark: &Block24Set, net: &Internet, key: F) -> HashMap<K, Vec<f64>>
where
    F: Fn(&mt_netmodel::AsInfo) -> K,
    K: std::hash::Hash + Eq,
{
    let mut out: HashMap<K, Vec<f64>> = HashMap::new();
    for ann in &net.announcements {
        let a = &net.ases[ann.as_idx as usize];
        let covered = dark.count_in_prefix(ann.prefix);
        let share = covered as f64 / f64::from(ann.prefix.num_blocks24());
        out.entry(key(a)).or_default().push(share);
    }
    for shares in out.values_mut() {
        shares.sort_by(f64::total_cmp);
    }
    out
}

/// Evaluates an ECDF at `x` given ascending samples.
pub fn ecdf(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.partition_point(|&s| s <= x);
    n as f64 / samples.len() as f64
}

/// Port-activity matrix: packets per destination port, bucketed by
/// region and by network type (the data behind the bean plots of
/// Figures 11/12/18–20).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PortMatrix {
    /// `(port, continent) → packets`.
    pub by_region: HashMap<(u16, Continent), u64>,
    /// `(port, network type) → packets`.
    pub by_type: HashMap<(u16, NetworkType), u64>,
    /// `(port, continent, network type) → packets` (Figures 19/20 split
    /// network types within one region).
    pub by_region_type: HashMap<(u16, Continent, NetworkType), u64>,
    /// Total packets recorded.
    pub total: u64,
}

impl PortMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `packets` toward `port` on a block with the given
    /// attributes.
    pub fn add(&mut self, port: u16, continent: Continent, ty: NetworkType, packets: u64) {
        *self.by_region.entry((port, continent)).or_default() += packets;
        *self.by_type.entry((port, ty)).or_default() += packets;
        *self
            .by_region_type
            .entry((port, continent, ty))
            .or_default() += packets;
        self.total += packets;
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &PortMatrix) {
        for (&k, &v) in &other.by_region {
            *self.by_region.entry(k).or_default() += v;
        }
        for (&k, &v) in &other.by_type {
            *self.by_type.entry(k).or_default() += v;
        }
        for (&k, &v) in &other.by_region_type {
            *self.by_region_type.entry(k).or_default() += v;
        }
        self.total += other.total;
    }

    /// The top ports within one region, by packets.
    pub fn top_ports_in_region(&self, region: Continent, n: usize) -> Vec<(u16, u64)> {
        let mut v: Vec<(u16, u64)> = self
            .by_region
            .iter()
            .filter(|&(&(_, c), _)| c == region)
            .map(|(&(p, _), &count)| (p, count))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The union of per-region top-`n` lists, ordered by global packet
    /// count — the paper's procedure for the Figure 11 port list.
    pub fn union_top_ports_by_region(&self, n: usize) -> Vec<u16> {
        let mut union: HashSet<u16> = HashSet::new();
        for &region in &Continent::ALL {
            for (p, _) in self.top_ports_in_region(region, n) {
                union.insert(p);
            }
        }
        let mut global: HashMap<u16, u64> = HashMap::new();
        for (&(p, _), &c) in &self.by_region {
            *global.entry(p).or_default() += c;
        }
        let mut v: Vec<u16> = union.into_iter().collect();
        v.sort_by(|a, b| {
            global
                .get(b)
                .unwrap_or(&0)
                .cmp(global.get(a).unwrap_or(&0))
                .then(a.cmp(b))
        });
        v
    }

    /// Share of a port's packets within one region's total.
    pub fn region_share(&self, port: u16, region: Continent) -> f64 {
        let region_total: u64 = self
            .by_region
            .iter()
            .filter(|&(&(_, c), _)| c == region)
            .map(|(_, &v)| v)
            .sum();
        if region_total == 0 {
            return 0.0;
        }
        *self.by_region.get(&(port, region)).unwrap_or(&0) as f64 / region_total as f64
    }

    /// Share of a port within one `(region, type)` bucket's total
    /// (Figures 19/20).
    pub fn region_type_share(&self, port: u16, region: Continent, ty: NetworkType) -> f64 {
        let bucket_total: u64 = self
            .by_region_type
            .iter()
            .filter(|&(&(_, c, t), _)| c == region && t == ty)
            .map(|(_, &v)| v)
            .sum();
        if bucket_total == 0 {
            return 0.0;
        }
        *self.by_region_type.get(&(port, region, ty)).unwrap_or(&0) as f64 / bucket_total as f64
    }

    /// Share of a port's packets relative to ALL recorded traffic
    /// (Figure 18's global-perspective variant).
    pub fn global_share(&self, port: u16, region: Continent) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.by_region.get(&(port, region)).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Share of a port's packets within one network type's total.
    pub fn type_share(&self, port: u16, ty: NetworkType) -> f64 {
        let type_total: u64 = self
            .by_type
            .iter()
            .filter(|&(&(_, t), _)| t == ty)
            .map(|(_, &v)| v)
            .sum();
        if type_total == 0 {
            return 0.0;
        }
        *self.by_type.get(&(port, ty)).unwrap_or(&0) as f64 / type_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_netmodel::InternetConfig;
    use mt_types::Block24;

    fn net() -> Internet {
        Internet::generate(InternetConfig::small(), 4)
    }

    #[test]
    fn summary_counts_distinct_attributes() {
        let net = net();
        let dark = net.dark_truth.clone();
        let s = summarize("truth", &dark, &net);
        assert_eq!(s.blocks, dark.len() as u64);
        assert!(s.ases > 1);
        assert!(s.countries > 1);
        assert!(s.ases >= s.countries || s.countries <= s.ases + s.blocks);
    }

    #[test]
    fn by_country_sums_to_block_count() {
        let net = net();
        let counts = by_country(&net.dark_truth, &net);
        let total: u64 = counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, net.dark_truth.len() as u64);
        // Sorted descending.
        for w in counts.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn type_continent_matrix_totals_agree() {
        let net = net();
        let m = TypeContinentMatrix::build(&net.dark_truth, &net);
        assert_eq!(m.total(), net.dark_truth.len() as u64);
        let by_rows: u64 = Continent::ALL.iter().map(|&c| m.continent_total(c)).sum();
        let by_cols: u64 = NetworkType::ALL.iter().map(|&t| m.type_total(t)).sum();
        assert_eq!(by_rows, m.total());
        assert_eq!(by_cols, m.total());
    }

    #[test]
    fn prefix_index_is_sorted_unit_interval() {
        let net = net();
        for len in [16u8, 18, 20, 22] {
            let shares = prefix_index(&net.dark_truth, &net, len);
            for w in shares.windows(2) {
                assert!(w[0] <= w[1]);
            }
            for &s in &shares {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn ecdf_basics() {
        let samples = [0.1, 0.2, 0.2, 0.9];
        assert_eq!(ecdf(&samples, 0.0), 0.0);
        assert_eq!(ecdf(&samples, 0.2), 0.75);
        assert_eq!(ecdf(&samples, 1.0), 1.0);
        assert_eq!(ecdf(&[], 0.5), 0.0);
    }

    #[test]
    fn share_by_group_covers_all_announcements() {
        let net = net();
        let by_type = share_by_group(&net.dark_truth, &net, |a| a.network_type);
        let n: usize = by_type.values().map(Vec::len).sum();
        assert_eq!(n, net.announcements.len());
    }

    #[test]
    fn port_matrix_shares_and_tops() {
        let mut m = PortMatrix::new();
        m.add(23, Continent::Africa, NetworkType::Isp, 70);
        m.add(37215, Continent::Africa, NetworkType::Isp, 30);
        m.add(23, Continent::Europe, NetworkType::Education, 100);
        assert_eq!(m.total, 200);
        assert!((m.region_share(23, Continent::Africa) - 0.7).abs() < 1e-12);
        assert!((m.region_share(37215, Continent::Africa) - 0.3).abs() < 1e-12);
        assert_eq!(m.region_share(37215, Continent::Europe), 0.0);
        assert_eq!(m.top_ports_in_region(Continent::Africa, 1), vec![(23, 70)]);
        let union = m.union_top_ports_by_region(2);
        assert_eq!(union[0], 23, "globally heaviest port first");
        assert!(union.contains(&37215));
        assert!((m.type_share(23, NetworkType::Education) - 1.0).abs() < 1e-12);
        assert!((m.region_type_share(23, Continent::Africa, NetworkType::Isp) - 0.7).abs() < 1e-12);
        assert!((m.global_share(23, Continent::Europe) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn port_matrix_merge() {
        let mut a = PortMatrix::new();
        a.add(23, Continent::Asia, NetworkType::Isp, 5);
        let mut b = PortMatrix::new();
        b.add(23, Continent::Asia, NetworkType::Isp, 7);
        b.add(80, Continent::Asia, NetworkType::DataCenter, 1);
        a.merge(&b);
        assert_eq!(a.total, 13);
        assert_eq!(a.by_region[&(23, Continent::Asia)], 12);
        let _ = Block24(0); // silence unused-import lints in some cfgs
    }
}
