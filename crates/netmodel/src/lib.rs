//! The synthetic Internet the meta-telescope is evaluated against.
//!
//! The paper's raw inputs — IXP flow feeds, telescope captures, BGP
//! tables, activity hitlists — are proprietary. This crate builds a
//! deterministic stand-in world that exercises the same code paths:
//!
//! - [`config`] — scenario parameters ([`InternetConfig::small`] for
//!   tests, [`InternetConfig::paper`] for the repro harness);
//! - [`internet`] — AS/prefix/usage generation, telescopes, RIB
//!   snapshots with churn;
//! - [`vantage`] — IXP visibility maps (destination- and source-side,
//!   independently drawn, which yields asymmetric routing);
//! - [`aux`] — the Censys/NDT/ISI-style activity datasets used for
//!   false-positive analysis and final scrubbing;
//! - [`rib_io`] — pfx2as-style text serialization of RIB snapshots.
//!
//! Everything is a pure function of `(config, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aux;
pub mod config;
pub mod internet;
pub mod rib_io;
pub mod vantage;

pub use aux::AuxDatasets;
pub use config::{AuxCoverage, ContinentProfile, InternetConfig, IxpConfig, TelescopeConfig};
pub use internet::{Announcement, AsInfo, BlockInfo, Internet, Telescope, Usage};
pub use vantage::VantagePoint;
