//! Scenario configuration for the synthetic Internet.
//!
//! A scenario is fully described by an [`InternetConfig`] plus a `u64`
//! seed; the same pair always generates the same Internet, the same
//! vantage-point visibility, and (together with the traffic config) the
//! same flows. Two built-in profiles are provided:
//!
//! - [`InternetConfig::small`] — a few thousand /24s, three IXPs, for
//!   unit/integration tests (runs in milliseconds);
//! - [`InternetConfig::paper`] — a scaled-down rendition of the paper's
//!   setting: 14 IXPs in three regions, three operational telescopes, a
//!   few hundred thousand announced /24s. Counts in the regenerated
//!   tables carry this scale factor relative to the real Internet.

use mt_types::Continent;
use serde::{Deserialize, Serialize};

/// Configuration of one IXP vantage point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IxpConfig {
    /// Short code, e.g. `CE1` (paper Table 1 naming).
    pub code: String,
    /// Region the IXP operates in.
    pub region: Continent,
    /// Approximate number of member networks (drives visibility).
    pub members: u32,
    /// Packet sampling rate N (1-in-N) of the flow export.
    pub sampling_rate: u32,
    /// Fraction of *same-region* ASes whose inbound traffic transits this
    /// IXP (destination-side visibility).
    pub local_visibility: f64,
    /// Destination-side visibility for ASes in other regions (remote
    /// peering, hypergiants).
    pub remote_visibility: f64,
}

/// Configuration of one operational telescope (paper Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelescopeConfig {
    /// Short code, e.g. `TUS1`.
    pub code: String,
    /// Region hosting the telescope.
    pub region: Continent,
    /// Number of contiguous /24 blocks.
    pub num_blocks: u32,
    /// TCP/UDP destination ports blocked by the ingress router (TEU1
    /// blocks 23 and 445 in the paper).
    pub blocked_ports: Vec<u16>,
    /// Fraction of blocks dynamically allocated to end users on any given
    /// day (TEU1's churn), i.e. not dark that day.
    pub dynamic_active_fraction: f64,
    /// Number of IXPs (taken in config order) at which the hosting AS
    /// peers directly, guaranteeing destination-side visibility (TEU2
    /// peers at ten IXPs in the paper).
    pub direct_peering_ixps: usize,
}

/// Relative AS-count weights and network-type mix per continent.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContinentProfile {
    /// Continent this profile describes.
    pub continent: Continent,
    /// Relative share of all ASes located here.
    pub as_weight: f64,
    /// Network-type mix `[ISP, Enterprise, Education, DataCenter]`.
    pub type_mix: [f64; 4],
    /// Base probability that an announced /24 here is dark (modulated by
    /// network type and prefix size during generation). Calibrated so EU
    /// and AF show the least dark share, matching the paper's Figure 17.
    pub base_dark_fraction: f64,
}

/// Full scenario configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InternetConfig {
    /// Total number of ASes to generate (telescope/host ASes included).
    pub num_ases: u32,
    /// Per-continent profiles (weights need not sum to 1).
    pub continents: Vec<ContinentProfile>,
    /// Fraction of NA education/enterprise ASes holding a legacy /8.
    pub legacy_slash8_fraction: f64,
    /// Mean number of announced prefixes per AS.
    pub mean_prefixes_per_as: f64,
    /// Distribution of prefix lengths for regular (non-legacy)
    /// allocations: `(prefix_len, weight)`.
    pub prefix_len_weights: Vec<(u8, f64)>,
    /// Mean run length, in /24 blocks, of contiguous dark (or active)
    /// stretches inside an announcement — gives Hilbert maps their blocky
    /// look and makes whole-prefix dark ranges possible.
    pub dark_run_mean: f64,
    /// Probability that an unannounced gap is left after a regular
    /// allocation. Each gap costs up to a full alignment span of
    /// address space; the full-IPv4 profile keeps this near zero so
    /// the announced space approaches the usable 2^24 /24s.
    pub gap_probability: f64,
    /// First octets of /8 blocks kept entirely unannounced (the spoofing
    /// baseline of Section 7.2 observes traffic "from" these).
    pub unrouted_octets: Vec<u8>,
    /// Per-day probability that an announcement is withdrawn from the RIB
    /// that day (routing churn; pipeline step 5 sees it).
    pub rib_churn: f64,
    /// IXP vantage points.
    pub ixps: Vec<IxpConfig>,
    /// Operational telescopes.
    pub telescopes: Vec<TelescopeConfig>,
    /// Coverage of the auxiliary activity datasets: the probability that
    /// a truly active /24 appears in Censys / NDT / ISI respectively
    /// (they are lower bounds on activity, per the paper's footnote 3).
    pub aux_coverage: AuxCoverage,
}

/// Coverage parameters of the three activity datasets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuxCoverage {
    /// Censys: port scans of the whole space — high coverage of
    /// server-ish blocks.
    pub censys: f64,
    /// NDT speed tests — only eyeball (ISP) blocks, modest coverage.
    pub ndt: f64,
    /// ISI ICMP history — ping-responsive blocks.
    pub isi: f64,
}

impl InternetConfig {
    /// Default continent profiles shared by both built-in scenarios.
    fn default_continents() -> Vec<ContinentProfile> {
        use Continent::*;
        vec![
            ContinentProfile {
                continent: NorthAmerica,
                as_weight: 0.30,
                type_mix: [0.30, 0.25, 0.28, 0.17],
                base_dark_fraction: 0.45,
            },
            ContinentProfile {
                continent: Europe,
                as_weight: 0.26,
                type_mix: [0.45, 0.22, 0.18, 0.15],
                base_dark_fraction: 0.22,
            },
            ContinentProfile {
                continent: Asia,
                as_weight: 0.24,
                type_mix: [0.50, 0.17, 0.22, 0.11],
                base_dark_fraction: 0.40,
            },
            ContinentProfile {
                continent: SouthAmerica,
                as_weight: 0.08,
                type_mix: [0.60, 0.20, 0.10, 0.10],
                base_dark_fraction: 0.35,
            },
            ContinentProfile {
                continent: Africa,
                as_weight: 0.06,
                type_mix: [0.60, 0.22, 0.10, 0.08],
                base_dark_fraction: 0.25,
            },
            ContinentProfile {
                continent: Oceania,
                as_weight: 0.06,
                type_mix: [0.50, 0.22, 0.18, 0.10],
                base_dark_fraction: 0.38,
            },
        ]
    }

    /// The 14 IXPs of the paper's Table 1, with visibility scaled to the
    /// reported member counts and peak traffic.
    fn paper_ixps() -> Vec<IxpConfig> {
        use Continent::*;
        let ixp = |code: &str, region, members, local, remote| IxpConfig {
            code: code.to_owned(),
            region,
            members,
            sampling_rate: 15,
            local_visibility: local,
            remote_visibility: remote,
        };
        vec![
            ixp("CE1", Europe, 1_000, 0.85, 0.40),
            ixp("CE2", Europe, 250, 0.25, 0.04),
            ixp("CE3", Europe, 200, 0.35, 0.08),
            ixp("CE4", Europe, 200, 0.10, 0.015),
            ixp("NA1", NorthAmerica, 250, 0.75, 0.30),
            ixp("NA2", NorthAmerica, 125, 0.22, 0.04),
            ixp("NA3", NorthAmerica, 20, 0.035, 0.003),
            ixp("NA4", NorthAmerica, 20, 0.07, 0.008),
            // The paper groups South-European IXPs separately; they are
            // European for continent bookkeeping.
            ixp("SE1", Europe, 200, 0.30, 0.06),
            ixp("SE2", Europe, 10, 0.25, 0.05),
            ixp("SE3", Europe, 40, 0.08, 0.01),
            ixp("SE4", Europe, 40, 0.25, 0.05),
            ixp("SE5", Europe, 20, 0.06, 0.006),
            ixp("SE6", Europe, 30, 0.04, 0.004),
        ]
    }

    /// The three operational telescopes of the paper's Table 2.
    fn paper_telescopes() -> Vec<TelescopeConfig> {
        vec![
            TelescopeConfig {
                code: "TUS1".to_owned(),
                region: Continent::NorthAmerica,
                num_blocks: 1_856,
                blocked_ports: vec![],
                dynamic_active_fraction: 0.0,
                direct_peering_ixps: 0,
            },
            TelescopeConfig {
                code: "TEU1".to_owned(),
                region: Continent::Europe,
                num_blocks: 768,
                blocked_ports: vec![23, 445],
                dynamic_active_fraction: 0.65,
                direct_peering_ixps: 0,
            },
            TelescopeConfig {
                code: "TEU2".to_owned(),
                region: Continent::Europe,
                num_blocks: 8,
                blocked_ports: vec![],
                dynamic_active_fraction: 0.0,
                direct_peering_ixps: 10,
            },
        ]
    }

    /// Paper-scale profile (scaled-down Internet, full IXP/telescope
    /// roster). Intended for `--release` runs of the `repro` harness.
    pub fn paper() -> Self {
        InternetConfig {
            num_ases: 2_500,
            continents: Self::default_continents(),
            legacy_slash8_fraction: 0.006,
            mean_prefixes_per_as: 2.2,
            prefix_len_weights: vec![
                (12, 0.01),
                (14, 0.03),
                (16, 0.22),
                (18, 0.14),
                (19, 0.12),
                (20, 0.26),
                (21, 0.08),
                (22, 0.14),
            ],
            dark_run_mean: 24.0,
            gap_probability: 0.15,
            unrouted_octets: vec![37, 53],
            rib_churn: 0.002,
            ixps: Self::paper_ixps(),
            telescopes: Self::paper_telescopes(),
            aux_coverage: AuxCoverage {
                censys: 0.80,
                ndt: 0.30,
                isi: 0.60,
            },
        }
    }

    /// Full-IPv4 profile: the whole usable unicast space announced.
    ///
    /// Nominally the 16.8M (2^24) /24s of IPv4; what is actually
    /// announceable is the ~221 usable first octets left after removing
    /// 0/8, 224/4 and above, special-purpose blocks, and the two
    /// never-announced /8s (octets 37 and 53) — about 14.5M /24s, of
    /// which the legacy-style /8-heavy allocation below covers the vast
    /// majority (occasional unannounced gaps are left by design, like
    /// the other profiles). Same IXP/telescope roster as
    /// [`InternetConfig::paper`]; intended for the columnar stats
    /// layout, where a full day window fits in a few GB.
    pub fn full() -> Self {
        InternetConfig {
            num_ases: 2_500,
            continents: Self::default_continents(),
            // Legacy /8s are drawn from the /8-heavy regular weights
            // below instead of the separate legacy path.
            legacy_slash8_fraction: 0.0,
            mean_prefixes_per_as: 2.4,
            // Whole /8s only: mixing in longer prefixes costs up to a
            // /8 of alignment waste at every size transition, which at
            // this scale forfeits megablocks of coverage.
            prefix_len_weights: vec![(8, 1.0)],
            // Long dark runs keep per-announcement run counts (and thus
            // generation time) modest at /8 spans.
            dark_run_mean: 96.0,
            gap_probability: 0.02,
            unrouted_octets: vec![37, 53],
            rib_churn: 0.002,
            ixps: Self::paper_ixps(),
            telescopes: Self::paper_telescopes(),
            aux_coverage: AuxCoverage {
                censys: 0.80,
                ndt: 0.30,
                isi: 0.60,
            },
        }
    }

    /// Small profile for tests: three IXPs, three telescopes, a few
    /// thousand /24s.
    pub fn small() -> Self {
        use Continent::*;
        let ixp = |code: &str, region, members, local, remote| IxpConfig {
            code: code.to_owned(),
            region,
            members,
            sampling_rate: 15,
            local_visibility: local,
            remote_visibility: remote,
        };
        InternetConfig {
            num_ases: 80,
            continents: Self::default_continents(),
            legacy_slash8_fraction: 0.0,
            mean_prefixes_per_as: 1.6,
            prefix_len_weights: vec![(16, 0.1), (18, 0.2), (20, 0.4), (22, 0.3)],
            dark_run_mean: 12.0,
            gap_probability: 0.15,
            unrouted_octets: vec![37, 53],
            rib_churn: 0.002,
            ixps: vec![
                ixp("CE1", Europe, 100, 0.9, 0.6),
                ixp("NA1", NorthAmerica, 60, 0.8, 0.5),
                ixp("SE1", Europe, 20, 0.3, 0.1),
            ],
            telescopes: vec![
                TelescopeConfig {
                    code: "TUS1".to_owned(),
                    region: NorthAmerica,
                    num_blocks: 64,
                    blocked_ports: vec![],
                    dynamic_active_fraction: 0.0,
                    direct_peering_ixps: 0,
                },
                TelescopeConfig {
                    code: "TEU1".to_owned(),
                    region: Europe,
                    num_blocks: 32,
                    blocked_ports: vec![23, 445],
                    dynamic_active_fraction: 0.5,
                    direct_peering_ixps: 0,
                },
                TelescopeConfig {
                    code: "TEU2".to_owned(),
                    region: Europe,
                    num_blocks: 4,
                    blocked_ports: vec![],
                    dynamic_active_fraction: 0.0,
                    direct_peering_ixps: 3,
                },
            ],
            aux_coverage: AuxCoverage {
                censys: 0.80,
                ndt: 0.30,
                isi: 0.60,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_table1_roster() {
        let c = InternetConfig::paper();
        assert_eq!(c.ixps.len(), 14);
        assert_eq!(c.telescopes.len(), 3);
        assert_eq!(c.telescopes[0].num_blocks, 1_856);
        assert_eq!(c.telescopes[1].blocked_ports, vec![23, 445]);
        assert_eq!(c.telescopes[2].direct_peering_ixps, 10);
    }

    #[test]
    fn continent_weights_are_positive() {
        for profile in InternetConfig::paper().continents {
            assert!(profile.as_weight > 0.0);
            assert!(profile.type_mix.iter().all(|&w| w >= 0.0));
            assert!((0.0..=1.0).contains(&profile.base_dark_fraction));
        }
    }

    #[test]
    fn small_profile_is_small() {
        let c = InternetConfig::small();
        assert!(c.num_ases <= 100);
        assert_eq!(c.ixps.len(), 3);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = InternetConfig::paper();
        let json = serde_json::to_string(&c).unwrap();
        let back: InternetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_ases, c.num_ases);
        assert_eq!(back.ixps.len(), c.ixps.len());
    }
}
