//! Generation of the synthetic Internet.
//!
//! [`Internet::generate`] builds, from an [`InternetConfig`] and a seed:
//! ASes with geography/type/organization, announced prefixes with
//! per-/24 ground-truth usage (dark vs active, assigned in contiguous
//! runs so dark space is spatially clustered like real allocations),
//! dedicated telescope ranges, per-day RIB snapshots with churn, and the
//! IXP vantage points with their visibility maps.
//!
//! Ground truth lives *outside* anything the inference pipeline can see:
//! the pipeline consumes only flow records and RIB snapshots; truth is
//! used by the traffic generators (active blocks emit, dark blocks do
//! not) and by the evaluation harness (precision/recall).

use crate::config::InternetConfig;
use crate::vantage::VantagePoint;
use mt_types::{
    geo, Asn, Block24, Block24Set, Continent, Country, Ipv4, NetworkType, OrgId, Prefix,
    PrefixTrie, RibIndex, Slot24Index, SpecialRegistry, NUM_BLOCKS,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One autonomous system of the synthetic Internet.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Operating organization (several ASes may share one).
    pub org: OrgId,
    /// Registered country.
    pub country: Country,
    /// Continent of the registered country.
    pub continent: Continent,
    /// Business category.
    pub network_type: NetworkType,
}

/// Ground-truth usage of a /24 block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Usage {
    /// Hosts users/servers; originates traffic.
    Active,
    /// Advertised but unused.
    Dark,
}

/// One BGP announcement.
#[derive(Debug, Clone)]
pub struct Announcement {
    /// The announced prefix (always /24 or shorter here).
    pub prefix: Prefix,
    /// Index into [`Internet::ases`] of the originating AS.
    pub as_idx: u32,
    /// Index of the telescope owning this announcement, if dedicated.
    pub telescope: Option<u8>,
    /// One bit per covered /24: 1 = dark.
    dark_bits: Vec<u64>,
}

impl Announcement {
    fn set_dark(&mut self, offset: u32) {
        self.dark_bits[(offset / 64) as usize] |= 1 << (offset % 64);
    }

    /// Whether the `offset`-th /24 of this announcement is dark.
    pub fn is_dark(&self, offset: u32) -> bool {
        self.dark_bits[(offset / 64) as usize] & (1 << (offset % 64)) != 0
    }

    /// Number of dark /24s in the announcement.
    pub fn dark_count(&self) -> u32 {
        self.dark_bits.iter().map(|w| w.count_ones()).sum()
    }
}

/// A dedicated telescope range.
#[derive(Debug, Clone)]
pub struct Telescope {
    /// Short code (`TUS1`, ...).
    pub code: String,
    /// Index of the hosting AS.
    pub as_idx: u32,
    /// First /24 of the contiguous range.
    pub first_block: Block24,
    /// Number of /24s.
    pub num_blocks: u32,
    /// Ports dropped by the ingress router.
    pub blocked_ports: Vec<u16>,
    /// Fraction of blocks dynamically handed to users per day.
    pub dynamic_active_fraction: f64,
}

impl Telescope {
    /// One past the last block index, clamped to the top of the address
    /// space. `first_block + num_blocks` is computed in `u64` and capped
    /// at [`NUM_BLOCKS`] so a range placed at the very top of IPv4 can
    /// never wrap into low /24 indexes.
    fn end_block(&self) -> u32 {
        (u64::from(self.first_block.0) + u64::from(self.num_blocks)).min(u64::from(NUM_BLOCKS))
            as u32
    }

    /// Iterates over the telescope's blocks.
    pub fn blocks(&self) -> impl Iterator<Item = Block24> {
        (self.first_block.0..self.end_block()).map(Block24)
    }

    /// Whether `block` belongs to the telescope.
    pub fn contains(&self, block: Block24) -> bool {
        (self.first_block.0..self.end_block()).contains(&block.0)
    }

    /// Blocks handed out to end users on `day` (and therefore *not* dark
    /// that day). Deterministic in `(block, day, seed)`.
    pub fn dynamic_active_on(&self, day: mt_types::Day, seed: u64) -> Block24Set {
        let mut set = Block24Set::new();
        if self.dynamic_active_fraction <= 0.0 {
            return set;
        }
        let threshold = (self.dynamic_active_fraction * u64::MAX as f64) as u64;
        for block in self.blocks() {
            if splitmix(seed ^ 0x7e1e_5c09, u64::from(block.0), u64::from(day.0)) < threshold {
                set.insert(block);
            }
        }
        set
    }

    /// Blocks that are dark on `day` (total minus dynamically active).
    pub fn dark_on(&self, day: mt_types::Day, seed: u64) -> Block24Set {
        let mut set: Block24Set = self.blocks().collect();
        set.difference_with(&self.dynamic_active_on(day, seed));
        set
    }
}

/// A fully generated synthetic Internet.
#[derive(Debug)]
pub struct Internet {
    /// The configuration it was generated from.
    pub config: InternetConfig,
    /// The generation seed.
    pub seed: u64,
    /// All ASes; indices into this vector are used everywhere.
    pub ases: Vec<AsInfo>,
    /// All announcements (non-overlapping by construction).
    pub announcements: Vec<Announcement>,
    /// The dedicated telescopes.
    pub telescopes: Vec<Telescope>,
    /// The IXP vantage points with visibility maps.
    pub vantage_points: Vec<VantagePoint>,
    /// Ground truth: dark /24s (static view; TEU1's dynamic churn is
    /// resolved per day via [`Telescope::dark_on`]).
    pub dark_truth: Block24Set,
    /// Ground truth: active /24s.
    pub active_truth: Block24Set,
    pfx2ann: PrefixTrie<u32>,
    /// Flat LPM view of `pfx2ann`, compiled once at generation.
    /// Announcements are all /24 or shorter, so the index stays
    /// /24-aligned and [`Internet::block_info`] resolves each block with
    /// a single `lookup24` probe — the hottest query of the traffic
    /// generator.
    pfx2ann_index: RibIndex<u32>,
}

/// Resolved ground truth for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Index of the originating AS.
    pub as_idx: u32,
    /// Index of the covering announcement.
    pub ann_idx: u32,
    /// Usage of the block.
    pub usage: Usage,
    /// Telescope index if inside a dedicated range.
    pub telescope: Option<u8>,
}

/// Keyed hash used for stable per-(entity, day) coin flips that must not
/// depend on RNG call order. Delegates to [`mt_types::mix::mix3`].
pub(crate) fn splitmix(a: u64, b: u64, c: u64) -> u64 {
    mt_types::mix::mix3(a, b, c)
}

/// Picks an index from a slice of non-negative weights.
fn weighted_pick<R: RngExt>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Cursor-based address allocator over the usable unicast space.
struct Allocator {
    /// Next candidate /24 index.
    cursor: u32,
    /// Octets that must never be allocated.
    forbidden: [bool; 256],
    special: SpecialRegistry,
}

impl Allocator {
    fn new(unrouted: &[u8]) -> Self {
        let mut forbidden = [false; 256];
        forbidden[0] = true; // "this network"
        forbidden[224..].fill(true); // multicast + reserved
        for &o in unrouted {
            forbidden[o as usize] = true;
        }
        Allocator {
            cursor: 1 << 16, // start at 1.0.0.0
            forbidden,
            special: SpecialRegistry::new(),
        }
    }

    /// Allocates `count` /24s aligned to `count` (a power of two),
    /// skipping forbidden octets and special-purpose space. Returns the
    /// first block.
    fn alloc(&mut self, count: u32) -> Option<Block24> {
        debug_assert!(count.is_power_of_two() && count <= 1 << 16);
        loop {
            // Align up.
            let aligned = self.cursor.checked_add(count - 1)? & !(count - 1);
            if aligned >= 224 << 16 {
                return None; // out of unicast space
            }
            let octet = (aligned >> 16) as usize;
            if self.forbidden[octet] {
                // Skip to the next octet.
                self.cursor = ((octet as u32) + 1) << 16;
                continue;
            }
            // Ranges of 256+ blocks span whole octets; the per-octet
            // check above handles those. For smaller ranges also dodge
            // the sub-/8 special prefixes.
            let range_special = self.special.is_special_block(Block24(aligned))
                || self.special.is_special_block(Block24(aligned + count - 1));
            if range_special {
                self.cursor = aligned + count;
                continue;
            }
            self.cursor = aligned + count;
            return Some(Block24(aligned));
        }
    }

    /// Leaves a gap of `count` /24s unallocated.
    fn skip(&mut self, count: u32) {
        self.cursor = self.cursor.saturating_add(count);
    }
}

impl Internet {
    /// Generates the Internet for `(config, seed)`.
    pub fn generate(config: InternetConfig, seed: u64) -> Internet {
        let mut rng = StdRng::seed_from_u64(seed);
        let ases = Self::generate_ases(&config, &mut rng);
        let mut alloc = Allocator::new(&config.unrouted_octets);
        let mut announcements = Vec::new();
        let mut telescopes = Vec::new();

        // Dedicated telescope ranges first: they get clean, contiguous
        // space, which is what the Hilbert-map experiments look at.
        for (t_idx, tc) in config.telescopes.iter().enumerate() {
            let host_type = match t_idx {
                0 => NetworkType::Education,
                _ => NetworkType::Isp,
            };
            let as_idx = Self::pick_as(&ases, tc.region, host_type, &mut rng);
            // A telescope is one announcement of at most a /8; larger
            // values would overflow the allocator's span contract (and,
            // far before `u32::MAX`, `next_power_of_two` itself).
            assert!(
                tc.num_blocks >= 1 && tc.num_blocks <= 1 << 16,
                "telescope {} must cover between 1 and 65536 /24s, got {}",
                tc.code,
                tc.num_blocks
            );
            let span = tc.num_blocks.next_power_of_two();
            let first = alloc
                .alloc(span)
                // check: allow(no_panic, "world construction fails fast on an over-subscribed config; a clear panic at setup is the contract")
                .expect("address space exhausted placing telescope");
            let len = 24 - span.trailing_zeros() as u8;
            // check: allow(no_panic, "alloc returns spans aligned to their power-of-two size, so the base has no host bits")
            let prefix = Prefix::new(first.base(), len).expect("aligned allocation");
            let mut ann = Announcement {
                prefix,
                as_idx,
                telescope: Some(t_idx as u8),
                dark_bits: vec![0u64; (span as usize).div_ceil(64)],
            };
            // The telescope's blocks are dark; the remainder of the
            // covering power-of-two span belongs to the host and is
            // active.
            for offset in 0..tc.num_blocks {
                ann.set_dark(offset);
            }
            announcements.push(ann);
            telescopes.push(Telescope {
                code: tc.code.clone(),
                as_idx,
                first_block: first,
                num_blocks: tc.num_blocks,
                blocked_ports: tc.blocked_ports.clone(),
                dynamic_active_fraction: tc.dynamic_active_fraction,
            });
            // The host ISP's surrounding space: a mix of dark and active
            // /24s roughly 13× the telescope (mirroring the TUS1 host ISP
            // whose 26k /24s the classifier is calibrated on). Only the
            // first telescope (the calibration host) gets the full 13×.
            if t_idx == 0 {
                let extra_blocks = tc.num_blocks * 13;
                let mut remaining = extra_blocks;
                while remaining > 0 {
                    let span = remaining.min(256).next_power_of_two().min(256);
                    if let Some(first) = alloc.alloc(span) {
                        let len = 24 - span.trailing_zeros() as u8;
                        // check: allow(no_panic, "alloc returns spans aligned to their power-of-two size, so the base has no host bits")
                        let prefix = Prefix::new(first.base(), len).expect("aligned");
                        let mut ann = Announcement {
                            prefix,
                            as_idx,
                            telescope: None,
                            dark_bits: vec![0u64; (span as usize).div_ceil(64)],
                        };
                        Self::assign_dark_runs(
                            &mut ann,
                            span,
                            0.55,
                            config.dark_run_mean,
                            &mut rng,
                        );
                        announcements.push(ann);
                    }
                    remaining = remaining.saturating_sub(span);
                }
            }
        }

        // Legacy /8s for a sliver of NA education/enterprise ASes.
        if config.legacy_slash8_fraction > 0.0 {
            for (i, a) in ases.iter().enumerate() {
                let eligible = a.continent == Continent::NorthAmerica
                    && matches!(
                        a.network_type,
                        NetworkType::Education | NetworkType::Enterprise
                    );
                if eligible && rng.random::<f64>() < config.legacy_slash8_fraction * 3.3 {
                    // ×3.3 compensates for conditioning on NA+edu/ent
                    // (~30% of ASes) so the overall fraction matches.
                    if let Some(first) = alloc.alloc(1 << 16) {
                        // check: allow(no_panic, "alloc returns spans aligned to their power-of-two size, so the base has no host bits")
                        let prefix = Prefix::new(first.base(), 8).expect("aligned /8");
                        let mut ann = Announcement {
                            prefix,
                            as_idx: i as u32,
                            telescope: None,
                            dark_bits: vec![0u64; (1usize << 16) / 64],
                        };
                        // Legacy space is mostly unused.
                        let dark_p = 0.85;
                        Self::assign_dark_runs(
                            &mut ann,
                            1 << 16,
                            dark_p,
                            config.dark_run_mean * 8.0,
                            &mut rng,
                        );
                        announcements.push(ann);
                    }
                }
            }
        }

        // Regular allocations for every AS.
        let len_weights: Vec<f64> = config.prefix_len_weights.iter().map(|&(_, w)| w).collect();
        for (i, a) in ases.iter().enumerate() {
            // 1 + Geometric-ish count with the configured mean.
            let extra = config.mean_prefixes_per_as - 1.0;
            let mut count = 1;
            while count < 6 && rng.random::<f64>() < extra / (extra + 1.0) {
                count += 1;
            }
            for _ in 0..count {
                let pick = weighted_pick(&mut rng, &len_weights);
                let len = config.prefix_len_weights[pick].0;
                let span = 1u32 << (24 - len);
                let Some(first) = alloc.alloc(span) else {
                    break;
                };
                // check: allow(no_panic, "alloc returns spans aligned to their power-of-two size, so the base has no host bits")
                let prefix = Prefix::new(first.base(), len).expect("aligned");
                let mut ann = Announcement {
                    prefix,
                    as_idx: i as u32,
                    telescope: None,
                    dark_bits: vec![0u64; (span as usize).div_ceil(64)],
                };
                let dark_p = Self::dark_probability(&config, a, len);
                Self::assign_dark_runs(&mut ann, span, dark_p, config.dark_run_mean, &mut rng);
                announcements.push(ann);
                // Occasional unannounced gap after an allocation.
                if rng.random::<f64>() < config.gap_probability {
                    alloc.skip(rng.random_range(1..span.max(2)));
                }
            }
        }

        // Index structures and truth sets.
        let mut pfx2ann = PrefixTrie::new();
        let mut dark_truth = Block24Set::new();
        let mut active_truth = Block24Set::new();
        for (idx, ann) in announcements.iter().enumerate() {
            pfx2ann.insert(ann.prefix, idx as u32);
            for (offset, block) in ann.prefix.blocks24().enumerate() {
                if ann.is_dark(offset as u32) {
                    dark_truth.insert(block);
                } else {
                    active_truth.insert(block);
                }
            }
        }

        let vantage_points = VantagePoint::generate_all(&config, &ases, &telescopes, seed);
        let pfx2ann_index = RibIndex::build(&pfx2ann);
        debug_assert!(pfx2ann_index.is_block_aligned(), "announcements are <= /24");

        Internet {
            config,
            seed,
            ases,
            announcements,
            telescopes,
            vantage_points,
            dark_truth,
            active_truth,
            pfx2ann,
            pfx2ann_index,
        }
    }

    fn generate_ases(config: &InternetConfig, rng: &mut StdRng) -> Vec<AsInfo> {
        let weights: Vec<f64> = config.continents.iter().map(|c| c.as_weight).collect();
        let mut ases = Vec::with_capacity(config.num_ases as usize);
        let mut next_org = 0u32;
        for n in 0..config.num_ases {
            let profile = &config.continents[weighted_pick(rng, &weights)];
            let countries = geo::COUNTRIES_BY_CONTINENT
                .iter()
                .find(|(c, _)| *c == profile.continent)
                .map(|(_, list)| *list)
                // check: allow(no_panic, "COUNTRIES_BY_CONTINENT covers every Continent variant; a gap is a static-table bug worth failing fast at setup")
                .expect("profile continents are in the static table");
            // The first country of each continent list is its largest
            // economy; weight it heavily (US-heavy NA, CN-heavy Asia...).
            let country = if rng.random::<f64>() < 0.45 {
                Country::new(countries[0])
            } else {
                Country::new(countries[rng.random_range(0..countries.len())])
            };
            let network_type = NetworkType::ALL[weighted_pick(rng, &profile.type_mix)];
            // ~12% of ASes share an organization with the previous AS.
            let org = if n > 0 && rng.random::<f64>() < 0.12 {
                OrgId(next_org - 1)
            } else {
                next_org += 1;
                OrgId(next_org - 1)
            };
            ases.push(AsInfo {
                asn: Asn(64_512 + n),
                org,
                country,
                continent: profile.continent,
                network_type,
            });
        }
        ases
    }

    fn pick_as(ases: &[AsInfo], region: Continent, ty: NetworkType, rng: &mut StdRng) -> u32 {
        let candidates: Vec<u32> = ases
            .iter()
            .enumerate()
            .filter(|(_, a)| a.continent == region && a.network_type == ty)
            .map(|(i, _)| i as u32)
            .collect();
        if candidates.is_empty() {
            // Fall back to any AS in the region, then to any AS at all.
            let regional: Vec<u32> = ases
                .iter()
                .enumerate()
                .filter(|(_, a)| a.continent == region)
                .map(|(i, _)| i as u32)
                .collect();
            if regional.is_empty() {
                rng.random_range(0..ases.len() as u32)
            } else {
                regional[rng.random_range(0..regional.len())]
            }
        } else {
            candidates[rng.random_range(0..candidates.len())]
        }
    }

    fn dark_probability(config: &InternetConfig, a: &AsInfo, prefix_len: u8) -> f64 {
        let base = config
            .continents
            .iter()
            .find(|c| c.continent == a.continent)
            .map(|c| c.base_dark_fraction)
            .unwrap_or(0.3);
        let type_factor = match a.network_type {
            NetworkType::Isp => 1.0,
            NetworkType::Enterprise => 1.1,
            NetworkType::Education => 1.3,
            // Data centers emerged under scarcity; little space idles
            // (paper Figure 16).
            NetworkType::DataCenter => 0.45,
        };
        // Bigger (older) allocations idle more.
        let size_factor = match prefix_len {
            0..=13 => 1.5,
            14..=16 => 1.2,
            _ => 0.95,
        };
        (base * type_factor * size_factor).clamp(0.02, 0.92)
    }

    /// Assigns dark/active in alternating geometric runs so dark space is
    /// spatially clustered (solid rectangles on Hilbert maps).
    fn assign_dark_runs(
        ann: &mut Announcement,
        span: u32,
        dark_p: f64,
        run_mean: f64,
        rng: &mut StdRng,
    ) {
        let mut offset = 0u32;
        while offset < span {
            let dark = rng.random::<f64>() < dark_p;
            // Geometric run length with the configured mean.
            let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let run = (1.0 + (-u.ln()) * (run_mean - 1.0)).round() as u32;
            let run = run.clamp(1, span - offset);
            if dark {
                for o in offset..offset + run {
                    ann.set_dark(o);
                }
            }
            offset += run;
        }
    }

    /// Resolves ground truth for a block, if it is announced.
    pub fn block_info(&self, block: Block24) -> Option<BlockInfo> {
        let (prefix, &ann_idx) = self.pfx2ann_index.lookup24(block)?;
        debug_assert!(prefix.len() <= 24);
        debug_assert_eq!(Some((prefix, &ann_idx)), self.pfx2ann.lookup(block.base()));
        let ann = &self.announcements[ann_idx as usize];
        let offset = block.0 - ann.prefix.base().block24_index();
        Some(BlockInfo {
            as_idx: ann.as_idx,
            ann_idx,
            usage: if ann.is_dark(offset) {
                Usage::Dark
            } else {
                Usage::Active
            },
            telescope: ann.telescope,
        })
    }

    /// The AS info for a block, if announced.
    pub fn as_of_block(&self, block: Block24) -> Option<&AsInfo> {
        self.block_info(block)
            .map(|b| &self.ases[b.as_idx as usize])
    }

    /// Total number of announced /24s.
    ///
    /// Returned as `u64`: the full-IPv4 profile announces on the order
    /// of 2^24 blocks, and downstream accounting multiplies this count
    /// (flows per block, octets per flow) where 32-bit intermediate
    /// products would overflow.
    pub fn announced_blocks(&self) -> u64 {
        self.dark_truth.len() as u64 + self.active_truth.len() as u64
    }

    /// Compiles the block ↔ slot mapping of the announced space, the
    /// index behind the columnar stats layout (`StatsLayout::Columnar`).
    ///
    /// Built from the *full* announcement set, not a day RIB: daily
    /// churn only withdraws announcements, so every day's routed space
    /// is a subset of these slots and one index serves a whole run.
    pub fn slot_index(&self) -> Slot24Index {
        Slot24Index::build(&self.pfx2ann_index)
    }

    /// The RIB snapshot for `day`: announcements minus churn. Withdrawal
    /// is deterministic in `(announcement, day, seed)` and never touches
    /// telescope announcements (their space must stay routed for traffic
    /// to arrive).
    pub fn rib(&self, day: mt_types::Day) -> PrefixTrie<Asn> {
        let threshold = (self.config.rib_churn * u64::MAX as f64) as u64;
        let mut trie = PrefixTrie::new();
        for (idx, ann) in self.announcements.iter().enumerate() {
            let withdrawn = ann.telescope.is_none()
                && splitmix(self.seed ^ 0x0000_b61b, idx as u64, u64::from(day.0)) < threshold;
            if !withdrawn {
                trie.insert(ann.prefix, self.ases[ann.as_idx as usize].asn);
            }
        }
        trie
    }

    /// Whether `block` lies inside a prefix announced on `day`.
    pub fn is_routed(&self, block: Block24, rib: &PrefixTrie<Asn>) -> bool {
        rib.contains_addr(block.base())
    }

    /// The dark blocks of `day`, accounting for telescope dynamic churn.
    pub fn dark_on(&self, day: mt_types::Day) -> Block24Set {
        let mut dark = self.dark_truth.clone();
        for t in &self.telescopes {
            dark.difference_with(&t.dynamic_active_on(day, self.seed));
        }
        dark
    }

    /// The active blocks of `day` (static actives plus telescope blocks
    /// dynamically handed to users).
    pub fn active_on(&self, day: mt_types::Day) -> Block24Set {
        let mut active = self.active_truth.clone();
        for t in &self.telescopes {
            active.union_with(&t.dynamic_active_on(day, self.seed));
        }
        active
    }

    /// The telescope covering `block`, if any.
    pub fn telescope_of(&self, block: Block24) -> Option<&Telescope> {
        self.telescopes.iter().find(|t| t.contains(block))
    }

    /// First octets of the configured never-announced /8s.
    pub fn unrouted_octets(&self) -> &[u8] {
        &self.config.unrouted_octets
    }

    /// Whether an address falls inside configured unrouted space.
    pub fn is_unrouted_space(&self, addr: Ipv4) -> bool {
        self.config.unrouted_octets.contains(&addr.octets()[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_types::Day;

    fn small() -> Internet {
        Internet::generate(InternetConfig::small(), 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.announcements.len(), b.announcements.len());
        assert_eq!(a.dark_truth.len(), b.dark_truth.len());
        assert_eq!(a.ases.len(), b.ases.len());
        for (x, y) in a.announcements.iter().zip(&b.announcements) {
            assert_eq!(x.prefix, y.prefix);
            assert_eq!(x.dark_bits, y.dark_bits);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Internet::generate(InternetConfig::small(), 1);
        let b = Internet::generate(InternetConfig::small(), 2);
        assert_ne!(
            (a.dark_truth.len(), a.announcements.len()),
            (b.dark_truth.len(), b.announcements.len())
        );
    }

    #[test]
    fn announcements_do_not_overlap() {
        let net = small();
        let mut seen = Block24Set::new();
        for ann in &net.announcements {
            for block in ann.prefix.blocks24() {
                assert!(seen.insert(block), "block {block} covered twice");
            }
        }
    }

    #[test]
    fn no_special_or_unrouted_space_announced() {
        let net = small();
        let special = SpecialRegistry::new();
        for ann in &net.announcements {
            assert!(!special.is_special(ann.prefix.base()), "{}", ann.prefix);
            assert!(!special.is_special(ann.prefix.last()), "{}", ann.prefix);
            assert!(
                !net.is_unrouted_space(ann.prefix.base()),
                "{} is in unrouted space",
                ann.prefix
            );
        }
    }

    #[test]
    fn truth_sets_partition_announced_space() {
        let net = small();
        assert_eq!(net.dark_truth.intersection_len(&net.active_truth), 0);
        let total: usize = net
            .announcements
            .iter()
            .map(|a| a.prefix.num_blocks24() as usize)
            .sum();
        assert_eq!(net.dark_truth.len() + net.active_truth.len(), total);
        assert!(net.dark_truth.len() > 100, "expect meaningful dark space");
        assert!(
            net.active_truth.len() > 100,
            "expect meaningful active space"
        );
    }

    #[test]
    fn telescopes_are_dark_and_resolvable() {
        let net = small();
        assert_eq!(net.telescopes.len(), 3);
        for (i, t) in net.telescopes.iter().enumerate() {
            for block in t.blocks() {
                let info = net.block_info(block).expect("telescope space is announced");
                assert_eq!(info.usage, Usage::Dark);
                assert_eq!(info.telescope, Some(i as u8));
                assert!(net.dark_truth.contains(block));
            }
        }
    }

    #[test]
    fn block_info_matches_truth_sets() {
        let net = small();
        for block in net.dark_truth.iter().take(200) {
            assert_eq!(net.block_info(block).unwrap().usage, Usage::Dark);
        }
        for block in net.active_truth.iter().take(200) {
            assert_eq!(net.block_info(block).unwrap().usage, Usage::Active);
        }
        // Unannounced space resolves to nothing.
        assert_eq!(net.block_info(Block24(37 << 16)), None);
    }

    #[test]
    fn rib_churn_withdraws_a_little() {
        let net = small();
        let day0 = net.rib(Day(0));
        assert!(day0.len() <= net.announcements.len());
        assert!(
            day0.len() >= net.announcements.len() * 9 / 10,
            "churn should be small"
        );
        // Telescope space is never withdrawn.
        for day in Day(0).range(7) {
            let rib = net.rib(day);
            for t in &net.telescopes {
                assert!(net.is_routed(t.first_block, &rib));
            }
        }
    }

    #[test]
    fn dynamic_telescope_blocks_vary_by_day() {
        let net = small();
        let teu1 = &net.telescopes[1];
        let d0 = teu1.dynamic_active_on(Day(0), net.seed);
        let d1 = teu1.dynamic_active_on(Day(1), net.seed);
        assert!(!d0.is_empty(), "TEU1 has dynamic churn");
        assert!(d0 != d1, "different days differ");
        // Deterministic per day.
        assert_eq!(d0.len(), teu1.dynamic_active_on(Day(0), net.seed).len());
        // dark_on is the complement within the telescope.
        assert_eq!(
            teu1.dark_on(Day(0), net.seed).len() + d0.len(),
            teu1.num_blocks as usize
        );
    }

    #[test]
    fn as_attributes_are_plausible() {
        let net = small();
        assert_eq!(net.ases.len(), 80);
        let continents: std::collections::HashSet<Continent> =
            net.ases.iter().map(|a| a.continent).collect();
        assert!(continents.len() >= 4, "ASes spread across continents");
        for a in &net.ases {
            assert_eq!(mt_types::geo::continent_of(a.country), Some(a.continent));
        }
    }

    #[test]
    fn telescope_range_is_clamped_at_the_top_of_the_address_space() {
        let t = Telescope {
            code: "TTOP".to_owned(),
            as_idx: 0,
            first_block: Block24(NUM_BLOCKS - 4),
            num_blocks: 16,
            blocked_ports: vec![],
            dynamic_active_fraction: 0.0,
        };
        let blocks: Vec<Block24> = t.blocks().collect();
        assert_eq!(blocks.len(), 4, "range must stop at the last /24");
        assert!(blocks.iter().all(|b| b.0 < NUM_BLOCKS));
        assert!(t.contains(Block24(NUM_BLOCKS - 1)));
        assert!(!t.contains(Block24(0)), "the range must not wrap");
        assert!(!t.contains(Block24(NUM_BLOCKS - 5)));

        // A first block beyond the /24 space yields an empty range, and
        // first_block + num_blocks near u32::MAX must not wrap either.
        let t2 = Telescope {
            first_block: Block24(u32::MAX - 2),
            num_blocks: 1 << 16,
            ..t.clone()
        };
        assert_eq!(t2.blocks().count(), 0);
        assert!(!t2.contains(Block24(0)));
        assert!(t2.dark_on(Day(0), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "must cover between 1 and 65536 /24s")]
    fn oversized_telescope_config_is_rejected() {
        let mut config = InternetConfig::small();
        config.telescopes[0].num_blocks = (1 << 16) + 1;
        Internet::generate(config, 7);
    }

    #[test]
    #[should_panic(expected = "must cover between 1 and 65536 /24s")]
    fn empty_telescope_config_is_rejected() {
        let mut config = InternetConfig::small();
        config.telescopes[1].num_blocks = 0;
        Internet::generate(config, 7);
    }

    #[test]
    fn slot_index_covers_exactly_the_announced_space() {
        let net = small();
        let slots = net.slot_index();
        assert_eq!(u64::from(slots.num_slots()), net.announced_blocks());
        for block in net.dark_truth.iter().take(100) {
            assert!(slots.slot_of(block).is_some());
        }
        for block in net.active_truth.iter().take(100) {
            assert!(slots.slot_of(block).is_some());
        }
        assert_eq!(slots.slot_of(Block24(37 << 16)), None, "unrouted /8");
    }

    #[test]
    fn full_profile_generates_at_ipv4_scale() {
        let net = Internet::generate(InternetConfig::full(), 3);
        let announced = net.announced_blocks();
        assert!(
            announced > 13_000_000,
            "full profile should announce most of the ~14.5M usable /24s, got {announced}"
        );
        assert!(u64::from(net.dark_truth.len() as u32) < announced);
        let slots = net.slot_index();
        assert_eq!(u64::from(slots.num_slots()), announced);
        // The never-announced /8s and reserved space stay unannounced.
        for &o in net.unrouted_octets() {
            assert_eq!(net.block_info(Block24((u32::from(o)) << 16)), None);
        }
        assert_eq!(net.block_info(Block24(0)), None);
        assert_eq!(net.block_info(Block24(NUM_BLOCKS - 1)), None);
    }

    #[test]
    fn unrouted_octets_never_routed() {
        let net = small();
        let rib = net.rib(Day(0));
        for &o in net.unrouted_octets() {
            for probe in [0u32, 100, 255] {
                let block = Block24(((o as u32) << 16) | probe);
                assert!(!net.is_routed(block, &rib));
            }
        }
    }
}
