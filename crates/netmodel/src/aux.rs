//! Auxiliary activity datasets (Censys / NDT / ISI stand-ins).
//!
//! The paper uses three public measurement datasets as *lower bounds* on
//! which /24s are active, both to quantify false positives (13.9 % of the
//! initially inferred dark blocks showed activity) and to scrub the final
//! meta-telescope prefix list. We generate imperfect-coverage samples of
//! the ground-truth active set: each dataset sees only part of reality,
//! with biases matching its collection method.

use crate::config::AuxCoverage;
use crate::internet::{splitmix, Internet};
use mt_types::{Block24Set, NetworkType};

/// The three activity datasets, each a set of /24s with ≥ 1 observed
/// active address.
#[derive(Debug, Clone)]
pub struct AuxDatasets {
    /// Censys-style full port scans: best coverage, favours server-heavy
    /// (data-center / education) space.
    pub censys: Block24Set,
    /// NDT speed tests: user-initiated, so only eyeball (ISP) space.
    pub ndt: Block24Set,
    /// ISI ICMP echo history: ping-responsive space.
    pub isi: Block24Set,
}

impl AuxDatasets {
    /// Generates the datasets from the Internet's ground truth.
    ///
    /// Coverage probabilities come from the scenario config; per-block
    /// membership is a keyed hash so it is stable across runs and days
    /// (the real datasets are snapshots, not daily rolls).
    pub fn generate(net: &Internet) -> AuxDatasets {
        let AuxCoverage { censys, ndt, isi } = net.config.aux_coverage;
        let mut out = AuxDatasets {
            censys: Block24Set::new(),
            ndt: Block24Set::new(),
            isi: Block24Set::new(),
        };
        for block in net.active_truth.iter() {
            let Some(info) = net.block_info(block) else {
                continue;
            };
            let ty = net.ases[info.as_idx as usize].network_type;
            // Collection-method bias.
            let censys_p = match ty {
                NetworkType::DataCenter => (censys * 1.2).min(1.0),
                NetworkType::Education => censys,
                _ => censys * 0.9,
            };
            let ndt_p = match ty {
                NetworkType::Isp => ndt,
                _ => 0.0,
            };
            let isi_p = match ty {
                NetworkType::DataCenter => isi * 0.8, // ICMP often filtered
                _ => isi,
            };
            let b = u64::from(block.0);
            if hit(net.seed ^ 0xce, b, censys_p) {
                out.censys.insert(block);
            }
            if hit(net.seed ^ 0x0d7, b, ndt_p) {
                out.ndt.insert(block);
            }
            if hit(net.seed ^ 0x151, b, isi_p) {
                out.isi.insert(block);
            }
        }
        out
    }

    /// Union of the three datasets: the "known active" scrub list.
    pub fn union(&self) -> Block24Set {
        let mut u = self.censys.clone();
        u.union_with(&self.ndt);
        u.union_with(&self.isi);
        u
    }
}

fn hit(salt: u64, block: u64, p: f64) -> bool {
    p > 0.0 && splitmix(salt, block, 0x4a0d) < (p * u64::MAX as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InternetConfig;

    fn setup() -> (Internet, AuxDatasets) {
        let net = Internet::generate(InternetConfig::small(), 5);
        let aux = AuxDatasets::generate(&net);
        (net, aux)
    }

    #[test]
    fn datasets_are_subsets_of_active_truth() {
        let (net, aux) = setup();
        for set in [&aux.censys, &aux.ndt, &aux.isi] {
            assert_eq!(set.difference(&net.active_truth).len(), 0);
        }
    }

    #[test]
    fn coverage_is_partial_but_substantial() {
        let (net, aux) = setup();
        let active = net.active_truth.len();
        assert!(aux.censys.len() > active / 2, "Censys covers most actives");
        assert!(aux.censys.len() < active, "but not all");
        assert!(!aux.isi.is_empty());
    }

    #[test]
    fn ndt_only_covers_isp_space() {
        let (net, aux) = setup();
        for block in aux.ndt.iter() {
            let info = net.block_info(block).unwrap();
            assert_eq!(
                net.ases[info.as_idx as usize].network_type,
                NetworkType::Isp
            );
        }
    }

    #[test]
    fn union_superset_of_each() {
        let (_, aux) = setup();
        let u = aux.union();
        for set in [&aux.censys, &aux.ndt, &aux.isi] {
            assert_eq!(set.difference(&u).len(), 0);
        }
        assert!(u.len() >= aux.censys.len());
    }

    #[test]
    fn generation_is_stable() {
        let net = Internet::generate(InternetConfig::small(), 5);
        let a = AuxDatasets::generate(&net);
        let b = AuxDatasets::generate(&net);
        assert!(a.censys == b.censys && a.ndt == b.ndt && a.isi == b.isi);
    }
}
