//! IXP vantage points and their routing visibility.
//!
//! An IXP sees a flow only if the route the flow actually takes crosses
//! its fabric. We model this with two per-AS booleans for each vantage
//! point, drawn once per scenario:
//!
//! - *destination-side* visibility — traffic toward this AS commonly
//!   enters through the IXP (the AS or its upstream peers there);
//! - *source-side* visibility — traffic this AS originates commonly
//!   transits the IXP.
//!
//! A flow from sender AS `s` to destination AS `d` is observable iff
//! `src_visible[s] && dst_visible[d]`. Crucially the *sender* is the AS
//! that physically emits the packets; for spoofed traffic this is the
//! spoofer's network, not the network owning the forged source address —
//! which is exactly why spoofing pollutes the inference (Section 7.2).
//!
//! Drawing both sides independently also yields asymmetric routing for
//! free: a vantage point can see the forward direction of a conversation
//! but not the reverse (the CDN-ACK hazard the volume filter of pipeline
//! step 6 guards against).

use crate::config::InternetConfig;
use crate::internet::{splitmix, AsInfo, Telescope};
use mt_types::Continent;

/// One IXP vantage point with its visibility maps.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    /// Short code (paper Table 1 naming, e.g. `CE1`).
    pub code: String,
    /// Region the IXP operates in.
    pub region: Continent,
    /// Packet sampling rate N (1-in-N).
    pub sampling_rate: u32,
    /// Approximate member count (reporting only).
    pub members: u32,
    dst_visible: Vec<bool>,
    src_visible: Vec<bool>,
}

impl VantagePoint {
    /// Generates all vantage points for a scenario. Deterministic in
    /// `(config, ases, seed)`; individual coin flips are keyed hashes so
    /// they do not depend on iteration order.
    pub fn generate_all(
        config: &InternetConfig,
        ases: &[AsInfo],
        telescopes: &[Telescope],
        seed: u64,
    ) -> Vec<VantagePoint> {
        let mut vps: Vec<VantagePoint> = config
            .ixps
            .iter()
            .enumerate()
            .map(|(ixp_idx, ixp)| {
                let mut dst_visible = Vec::with_capacity(ases.len());
                let mut src_visible = Vec::with_capacity(ases.len());
                for (as_idx, a) in ases.iter().enumerate() {
                    let p = if a.continent == ixp.region {
                        ixp.local_visibility
                    } else {
                        ixp.remote_visibility
                    };
                    let threshold = (p * u64::MAX as f64) as u64;
                    dst_visible.push(
                        splitmix(seed ^ 0xd57_0001, (ixp_idx as u64) << 32, as_idx as u64)
                            < threshold,
                    );
                    src_visible.push(
                        splitmix(seed ^ 0x5bc_0002, (ixp_idx as u64) << 32, as_idx as u64)
                            < threshold,
                    );
                }
                VantagePoint {
                    code: ixp.code.clone(),
                    region: ixp.region,
                    sampling_rate: ixp.sampling_rate,
                    members: ixp.members,
                    dst_visible,
                    src_visible,
                }
            })
            .collect();

        // Direct peering: a telescope host that peers at the first N IXPs
        // is always visible there, in both directions.
        for (t_idx, tc) in config.telescopes.iter().enumerate() {
            let Some(t) = telescopes.get(t_idx) else {
                continue;
            };
            for vp in vps.iter_mut().take(tc.direct_peering_ixps) {
                vp.dst_visible[t.as_idx as usize] = true;
                vp.src_visible[t.as_idx as usize] = true;
            }
        }
        vps
    }

    /// Whether traffic toward `as_idx` transits this IXP.
    pub fn sees_dst_as(&self, as_idx: u32) -> bool {
        self.dst_visible[as_idx as usize]
    }

    /// Whether traffic originated by `as_idx` transits this IXP.
    pub fn sees_src_as(&self, as_idx: u32) -> bool {
        self.src_visible[as_idx as usize]
    }

    /// Whether a flow physically emitted by `sender_as` toward `dst_as`
    /// crosses this IXP.
    pub fn observes(&self, sender_as: u32, dst_as: u32) -> bool {
        self.sees_src_as(sender_as) && self.sees_dst_as(dst_as)
    }

    /// Number of ASes with destination-side visibility.
    pub fn visible_dst_count(&self) -> usize {
        self.dst_visible.iter().filter(|&&v| v).count()
    }

    /// Number of ASes with source-side visibility.
    pub fn visible_src_count(&self) -> usize {
        self.src_visible.iter().filter(|&&v| v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::Internet;

    fn net() -> Internet {
        Internet::generate(InternetConfig::small(), 11)
    }

    #[test]
    fn larger_ixps_see_more() {
        let net = net();
        let ce1 = &net.vantage_points[0]; // local 0.9 / remote 0.6
        let se1 = &net.vantage_points[2]; // local 0.3 / remote 0.1
        assert!(
            ce1.visible_dst_count() > se1.visible_dst_count(),
            "CE1 ({}) should out-see SE1 ({})",
            ce1.visible_dst_count(),
            se1.visible_dst_count()
        );
    }

    #[test]
    fn regional_affinity_holds() {
        let net = net();
        let ce1 = &net.vantage_points[0];
        let (mut local_seen, mut local_total) = (0, 0);
        let (mut remote_seen, mut remote_total) = (0, 0);
        for (i, a) in net.ases.iter().enumerate() {
            if a.continent == ce1.region {
                local_total += 1;
                local_seen += usize::from(ce1.sees_dst_as(i as u32));
            } else {
                remote_total += 1;
                remote_seen += usize::from(ce1.sees_dst_as(i as u32));
            }
        }
        let local_frac = local_seen as f64 / local_total.max(1) as f64;
        let remote_frac = remote_seen as f64 / remote_total.max(1) as f64;
        assert!(
            local_frac > remote_frac,
            "local {local_frac:.2} should exceed remote {remote_frac:.2}"
        );
    }

    #[test]
    fn direct_peering_forces_visibility() {
        let net = net();
        let teu2 = &net.telescopes[2];
        // TEU2 peers at the first 3 IXPs in the small profile.
        for vp in net.vantage_points.iter().take(3) {
            assert!(vp.sees_dst_as(teu2.as_idx), "{} must see TEU2", vp.code);
            assert!(vp.sees_src_as(teu2.as_idx));
        }
    }

    #[test]
    fn observes_requires_both_sides() {
        let net = net();
        let vp = &net.vantage_points[0];
        let s = (0..net.ases.len() as u32)
            .find(|&i| vp.sees_src_as(i))
            .unwrap();
        let blind_dst = (0..net.ases.len() as u32).find(|&i| !vp.sees_dst_as(i));
        if let Some(d) = blind_dst {
            assert!(!vp.observes(s, d));
        }
        let visible_dst = (0..net.ases.len() as u32)
            .find(|&i| vp.sees_dst_as(i))
            .unwrap();
        assert!(vp.observes(s, visible_dst));
    }

    #[test]
    fn visibility_is_deterministic() {
        let a = net();
        let b = net();
        for (x, y) in a.vantage_points.iter().zip(&b.vantage_points) {
            assert_eq!(x.visible_dst_count(), y.visible_dst_count());
            assert_eq!(x.visible_src_count(), y.visible_src_count());
        }
    }
}
