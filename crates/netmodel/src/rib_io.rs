//! Text serialization of RIB snapshots (pfx2as-style dumps).
//!
//! The paper consumes Route Views RIB dumps and CAIDA's daily
//! prefix-to-AS files. This module reads and writes the equivalent
//! interchange format — one `prefix <TAB> asn` line per announcement —
//! so RIB snapshots can be persisted, diffed across days, or replaced by
//! real pfx2as data when available.

use mt_types::{Asn, Prefix, PrefixTrie};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors from parsing a RIB dump.
#[derive(Debug)]
pub enum RibParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is not `prefix <TAB> asn`, with its 1-based number.
    Malformed {
        /// Line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl fmt::Display for RibParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RibParseError::Io(e) => write!(f, "I/O error: {e}"),
            RibParseError::Malformed { line, content } => {
                write!(f, "malformed RIB line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for RibParseError {}

impl From<io::Error> for RibParseError {
    fn from(e: io::Error) -> Self {
        RibParseError::Io(e)
    }
}

/// Writes a RIB as `prefix <TAB> asn` lines, sorted by prefix (the trie
/// iterates in order, so output is deterministic and diff-friendly).
pub fn write_rib<W: Write>(rib: &PrefixTrie<Asn>, mut w: W) -> io::Result<()> {
    for (prefix, asn) in rib.iter() {
        writeln!(w, "{prefix}\t{}", asn.0)?;
    }
    Ok(())
}

/// Reads a RIB dump. Empty lines and `#` comments are skipped; a
/// duplicate prefix keeps the last origin (as with repeated RIB entries).
pub fn read_rib<R: BufRead>(r: R) -> Result<PrefixTrie<Asn>, RibParseError> {
    let mut trie = PrefixTrie::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let malformed = || RibParseError::Malformed {
            line: i + 1,
            content: trimmed.to_owned(),
        };
        let mut parts = trimmed.split_whitespace();
        let prefix: Prefix = parts
            .next()
            .ok_or_else(malformed)?
            .parse()
            .map_err(|_| malformed())?;
        let asn: u32 = parts
            .next()
            .ok_or_else(malformed)?
            .parse()
            .map_err(|_| malformed())?;
        if parts.next().is_some() {
            return Err(malformed());
        }
        trie.insert(prefix, Asn(asn));
    }
    Ok(trie)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Internet, InternetConfig};
    use mt_types::Day;

    #[test]
    fn roundtrip_of_a_generated_rib() {
        let net = Internet::generate(InternetConfig::small(), 8);
        let rib = net.rib(Day(0));
        let mut buf = Vec::new();
        write_rib(&rib, &mut buf).unwrap();
        let back = read_rib(&buf[..]).unwrap();
        assert_eq!(back.len(), rib.len());
        for (prefix, asn) in rib.iter() {
            assert_eq!(back.get(prefix), Some(asn));
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# pfx2as snapshot\n\n10.0.0.0/8\t65001\n  \n192.168.0.0/16 65002\n";
        let rib = read_rib(text.as_bytes()).unwrap();
        assert_eq!(rib.len(), 2);
        assert_eq!(rib.get("10.0.0.0/8".parse().unwrap()), Some(&Asn(65_001)));
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let text = "10.0.0.0/8\t65001\nnot a prefix\n";
        match read_rib(text.as_bytes()) {
            Err(RibParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
        let extra = "10.0.0.0/8 65001 surprise\n";
        assert!(read_rib(extra.as_bytes()).is_err());
        let bad_asn = "10.0.0.0/8 not-an-asn\n";
        assert!(read_rib(bad_asn.as_bytes()).is_err());
    }

    #[test]
    fn duplicate_prefix_keeps_last() {
        let text = "10.0.0.0/8 1\n10.0.0.0/8 2\n";
        let rib = read_rib(text.as_bytes()).unwrap();
        assert_eq!(rib.get("10.0.0.0/8".parse().unwrap()), Some(&Asn(2)));
    }

    #[test]
    fn output_is_sorted_and_stable() {
        let net = Internet::generate(InternetConfig::small(), 8);
        let rib = net.rib(Day(0));
        let mut a = Vec::new();
        write_rib(&rib, &mut a).unwrap();
        let mut b = Vec::new();
        write_rib(&read_rib(&a[..]).unwrap(), &mut b).unwrap();
        assert_eq!(a, b, "write∘read∘write is idempotent");
    }
}
